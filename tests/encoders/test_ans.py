"""Chunk-interleaved rANS codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.ans import PROB_SCALE, RansCodec, normalize_frequencies


class TestNormalize:
    def test_sums_to_scale(self, rng):
        counts = rng.integers(0, 5000, 256)
        counts[0] = 1  # rare symbol must keep a slot
        freqs = normalize_frequencies(counts)
        assert int(freqs.sum()) == PROB_SCALE
        assert (freqs[counts > 0] >= 1).all()
        assert (freqs[counts == 0] == 0).all()

    def test_single_symbol(self):
        counts = np.zeros(256, np.int64)
        counts[7] = 123
        freqs = normalize_frequencies(counts)
        assert freqs[7] == PROB_SCALE

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_frequencies(np.zeros(256, np.int64))

    def test_many_rare_symbols(self):
        counts = np.ones(256, np.int64)
        freqs = normalize_frequencies(counts)
        assert int(freqs.sum()) == PROB_SCALE
        assert (freqs >= 1).all()


class TestRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 100, 4096, 4097, 30_000])
    def test_sizes(self, n, rng):
        data = rng.integers(0, 64, n).astype(np.uint8).tobytes()
        codec = RansCodec()
        assert codec.decode(codec.encode(data)) == data

    def test_skewed_compresses_near_entropy(self, rng):
        probs = np.array([0.85, 0.1, 0.04, 0.01])
        n = 100_000
        data = rng.choice(4, size=n, p=probs).astype(np.uint8).tobytes()
        enc = RansCodec().encode(data)
        rate = 8 * len(enc) / n
        entropy = -(probs * np.log2(probs)).sum()
        # ANS should beat Huffman granularity: within 0.35 bits of entropy
        # (chunk state + table overhead included).
        assert rate < entropy + 0.35
        assert RansCodec().decode(enc) == data

    def test_constant_stream(self):
        data = b"\x42" * 50_000
        codec = RansCodec()
        enc = codec.encode(data)
        assert codec.decode(enc) == data
        assert len(enc) < 2500

    def test_incompressible(self, rng):
        data = rng.integers(0, 256, 16_384).astype(np.uint8).tobytes()
        codec = RansCodec()
        enc = codec.encode(data)
        assert codec.decode(enc) == data
        assert len(enc) < len(data) * 1.15

    def test_small_chunks(self, rng):
        data = rng.integers(0, 10, 3000).astype(np.uint8).tobytes()
        codec = RansCodec(chunk_size=256)
        assert codec.decode(codec.encode(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=3000))
    def test_property_roundtrip(self, data):
        codec = RansCodec(chunk_size=512)
        assert codec.decode(codec.encode(data)) == data


def test_chunk_size_validation():
    with pytest.raises(ValueError):
        RansCodec(chunk_size=0)
