"""Chunk-parallel canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.huffman import (
    HuffmanCodec,
    canonical_codes,
    code_lengths_from_frequencies,
)


class TestCodeLengths:
    def test_empty_histogram(self):
        lengths = code_lengths_from_frequencies(np.zeros(256, np.int64))
        assert (lengths == 0).all()

    def test_single_symbol_gets_one_bit(self):
        freq = np.zeros(256, np.int64)
        freq[42] = 1000
        lengths = code_lengths_from_frequencies(freq)
        assert lengths[42] == 1
        assert lengths.sum() == 1

    def test_kraft_inequality(self, rng):
        freq = rng.integers(0, 1000, 256)
        lengths = code_lengths_from_frequencies(freq)
        kraft = sum(2.0 ** -int(l) for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force very deep trees without limiting.
        freq = np.zeros(256, np.int64)
        a, b = 1, 1
        for i in range(40):
            freq[i] = a
            a, b = b, a + b
        lengths = code_lengths_from_frequencies(freq, max_len=16)
        assert lengths.max() <= 16
        kraft = sum(2.0 ** -int(l) for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    def test_more_frequent_not_longer(self, rng):
        freq = rng.integers(1, 10_000, 256)
        lengths = code_lengths_from_frequencies(freq)
        order = np.argsort(freq)
        # Sorting by frequency ascending, lengths must be non-increasing.
        sorted_lengths = lengths[order]
        assert (np.diff(sorted_lengths.astype(int)) <= 0).all()


class TestCanonicalCodes:
    def test_prefix_free(self):
        freq = np.zeros(256, np.int64)
        freq[:8] = [50, 30, 10, 5, 3, 1, 1, 1]
        lengths = code_lengths_from_frequencies(freq)
        codes = canonical_codes(lengths)
        entries = [
            (format(int(codes[s]), f"0{int(lengths[s])}b"))
            for s in range(256)
            if lengths[s] > 0
        ]
        for i, a in enumerate(entries):
            for j, b in enumerate(entries):
                if i != j:
                    assert not b.startswith(a), f"{a} prefixes {b}"


class TestCodecRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 7, 4096, 4097, 50_000])
    def test_sizes_and_chunk_boundaries(self, n, rng):
        data = rng.integers(0, 32, n).astype(np.uint8).tobytes()
        codec = HuffmanCodec(chunk_size=4096)
        assert codec.decode(codec.encode(data)) == data

    def test_single_symbol_stream(self):
        data = b"\x80" * 10_000
        codec = HuffmanCodec()
        enc = codec.encode(data)
        assert codec.decode(enc) == data
        # 1 bit/symbol + table: ~1250 bytes of payload.
        assert len(enc) < 2000

    def test_skewed_stream_compresses(self, quantcode_bytes):
        codec = HuffmanCodec()
        enc = codec.encode(quantcode_bytes)
        assert len(enc) < len(quantcode_bytes) / 2
        assert codec.decode(enc) == quantcode_bytes

    def test_incompressible_stream(self, rng):
        data = rng.integers(0, 256, 20_000).astype(np.uint8).tobytes()
        codec = HuffmanCodec()
        enc = codec.encode(data)
        assert codec.decode(enc) == data
        assert len(enc) < len(data) * 1.2

    def test_small_chunks(self, rng):
        data = rng.integers(0, 5, 1000).astype(np.uint8).tobytes()
        codec = HuffmanCodec(chunk_size=64)
        assert codec.decode(codec.encode(data)) == data

    def test_all_256_symbols(self):
        data = bytes(range(256)) * 20
        codec = HuffmanCodec()
        assert codec.decode(codec.encode(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=5000))
    def test_property_roundtrip(self, data):
        codec = HuffmanCodec(chunk_size=512)
        assert codec.decode(codec.encode(data)) == data


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            HuffmanCodec(chunk_size=0)
        with pytest.raises(ValueError):
            HuffmanCodec(max_len=30)


def test_compression_tracks_entropy(rng):
    """Huffman rate must sit within ~1 bit/symbol of the source entropy."""
    probs = np.array([0.7, 0.15, 0.1, 0.04, 0.01])
    n = 100_000
    data = rng.choice(5, size=n, p=probs).astype(np.uint8).tobytes()
    entropy = -(probs * np.log2(probs)).sum()
    enc = HuffmanCodec().encode(data)
    rate = 8 * len(enc) / n
    assert entropy - 0.01 <= rate <= entropy + 1.1
