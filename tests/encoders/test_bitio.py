"""Bit-level primitives: packing, unpacking and window extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.bitio import (
    bits_to_bytes,
    bytes_to_bits,
    extract_bit_windows,
    pack_bitfields,
    popcount_bytes,
    unpack_bitfields,
)


class TestBitsBytes:
    def test_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0], dtype=np.uint8)
        packed = bits_to_bytes(bits)
        assert np.array_equal(bytes_to_bits(packed, bits.size), bits)

    def test_msb_first(self):
        # 0b10000000 must decode with the leading 1 at index 0.
        assert bytes_to_bits(b"\x80", 8)[0] == 1
        assert bytes_to_bits(b"\x80", 8)[1:].sum() == 0

    def test_partial_byte(self):
        bits = bytes_to_bits(b"\xff", 3)
        assert bits.tolist() == [1, 1, 1]


class TestPackBitfields:
    def test_empty(self):
        payload, nbits = pack_bitfields(np.zeros(0, np.uint64), np.zeros(0, np.int64))
        assert payload == b"" and nbits == 0

    def test_single_field(self):
        payload, nbits = pack_bitfields(np.array([0b101], np.uint64), np.array([3]))
        assert nbits == 3
        assert bytes_to_bits(payload, 3).tolist() == [1, 0, 1]

    def test_mixed_lengths_roundtrip(self):
        values = np.array([1, 0b11, 0b10110, 0, 0b1111111111], dtype=np.uint64)
        lengths = np.array([1, 2, 5, 4, 10], dtype=np.int64)
        payload, nbits = pack_bitfields(values, lengths)
        assert nbits == lengths.sum()
        out = unpack_bitfields(payload, lengths)
        assert np.array_equal(out, values)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            pack_bitfields(np.array([1], np.uint64), np.array([65]))
        with pytest.raises(ValueError):
            pack_bitfields(np.array([1], np.uint64), np.array([1, 2]))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)), min_size=1, max_size=200
        )
    )
    def test_property_roundtrip(self, pairs):
        lengths = np.array([l for _, l in pairs], dtype=np.int64)
        values = np.array([v & ((1 << l) - 1) for v, l in pairs], dtype=np.uint64)
        payload, nbits = pack_bitfields(values, lengths)
        assert nbits == int(lengths.sum())
        assert np.array_equal(unpack_bitfields(payload, lengths), values)


class TestExtractWindows:
    def test_byte_aligned(self):
        stream = np.frombuffer(b"\xab\xcd\xef\x01", dtype=np.uint8)
        wins = extract_bit_windows(stream, np.array([0, 8, 16]), 8)
        assert wins.tolist() == [0xAB, 0xCD, 0xEF]

    def test_unaligned(self):
        # stream bits: 1010 1011 1100 1101 -> window at offset 4, width 8 = 10111100
        stream = np.frombuffer(b"\xab\xcd", dtype=np.uint8)
        wins = extract_bit_windows(stream, np.array([4]), 8)
        assert wins.tolist() == [0b10111100]

    def test_past_end_zero_padded(self):
        stream = np.frombuffer(b"\xff", dtype=np.uint8)
        wins = extract_bit_windows(stream, np.array([6]), 8)
        assert wins.tolist() == [0b11000000]

    def test_width_validation(self):
        stream = np.zeros(4, np.uint8)
        with pytest.raises(ValueError):
            extract_bit_windows(stream, np.array([0]), 0)
        with pytest.raises(ValueError):
            extract_bit_windows(stream, np.array([0]), 25)

    def test_agrees_with_unpackbits(self, rng):
        stream = rng.integers(0, 256, 64).astype(np.uint8)
        bits = np.unpackbits(stream)
        offs = rng.integers(0, 64 * 8 - 16, 50)
        wins = extract_bit_windows(stream, offs, 16)
        for o, w in zip(offs, wins):
            expect = int("".join(map(str, bits[o : o + 16])), 2)
            assert int(w) == expect


def test_popcount(rng):
    arr = rng.integers(0, 256, 100).astype(np.uint8)
    assert popcount_bytes(arr) == sum(bin(int(v)).count("1") for v in arr)
    assert popcount_bytes(np.zeros(0, np.uint8)) == 0
