"""Named lossless pipelines: parsing, round-trips and Fig. 6 relations."""

import pytest

from repro.encoders.pipelines import (
    CR_PIPELINE,
    PIPELINE_CATALOG,
    TP_PIPELINE,
    LosslessPipeline,
    get_pipeline,
    parse_pipeline,
)


class TestParsing:
    def test_cr_pipeline_stages(self):
        names = [n for n, _ in parse_pipeline(CR_PIPELINE)]
        assert names == ["HF", "RRE4", "TCMS8", "RZE1"]

    def test_tp_pipeline_stages(self):
        names = [n for n, _ in parse_pipeline(TP_PIPELINE)]
        assert names == ["TCMS1", "BIT1", "RRE1"]

    def test_nvcomp_atoms(self):
        names = [n for n, _ in parse_pipeline("HF+nvCOMP::Zstd")]
        assert names == ["HF", "nvCOMP::Zstd"]

    def test_unknown_stage_raises(self):
        with pytest.raises(ValueError):
            parse_pipeline("HF+BOGUS1")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LosslessPipeline("")


@pytest.mark.parametrize("name", PIPELINE_CATALOG)
def test_catalog_roundtrip(name, quantcode_bytes):
    p = get_pipeline(name)
    enc = p.encode(quantcode_bytes)
    assert p.decode(enc) == quantcode_bytes


def test_catalog_matches_paper_fig6():
    """Every labelled point in Fig. 6 must be in the catalog."""
    for required in (
        "HF+RRE4-TCMS8-RZE1",
        "HF+TUPLQ1-RRE1",
        "HF+RRE1",
        "TCMS1-BIT1-RRE1",
        "RRE1-RRE2",
        "RRE1",
        "RRE1-RZE1-DIFFMS1-CLOG1",
        "HF+TUPLD2-RRE2-TUPLQ1-RRE1",
        "nvCOMP::ANS",
        "GPULZ",
        "ndzip",
    ):
        assert required in PIPELINE_CATALOG


def test_stage_trace_recorded(quantcode_bytes):
    p = LosslessPipeline(CR_PIPELINE)
    p.encode(quantcode_bytes)
    t = p.last_trace
    assert t.stage_names == ["HF", "RRE4", "TCMS8", "RZE1"]
    assert t.in_bytes[0] == len(quantcode_bytes)
    # Stage boundaries chain: output of stage i = input of stage i+1.
    assert t.out_bytes[:-1] == t.in_bytes[1:]


def test_cr_pipeline_beats_plain_huffman(quantcode_bytes):
    """§5.2: the orchestrated pipeline must out-compress Huffman alone on
    quantization-code streams (the residual redundancy argument)."""
    hf = len(get_pipeline("HF").encode(quantcode_bytes))
    cr = len(get_pipeline(CR_PIPELINE).encode(quantcode_bytes))
    assert cr <= hf


def test_tp_pipeline_close_to_cr_on_codes(quantcode_bytes):
    """§5.2.3: the Huffman-free TP pipeline achieves a ratio 'close to' the
    entropy pipeline on structured quantization codes (within ~2x)."""
    cr = len(get_pipeline(CR_PIPELINE).encode(quantcode_bytes))
    tp = len(get_pipeline(TP_PIPELINE).encode(quantcode_bytes))
    assert tp < 2.0 * cr


def test_pipeline_cache_shares_instances():
    assert get_pipeline("RRE1") is get_pipeline("RRE1")
