"""Codec-table memoization: identical histograms must not rebuild tables."""

import numpy as np
import pytest

from repro.encoders import ans, huffman


@pytest.fixture(autouse=True)
def fresh_caches():
    huffman.reset_table_cache()
    ans.reset_table_cache()
    yield
    huffman.reset_table_cache()
    ans.reset_table_cache()


class TestHuffmanTableCache:
    def test_repeat_encode_hits_cache(self):
        buf = bytes(np.random.default_rng(0).integers(0, 40, 4096, dtype=np.uint8))
        codec = huffman.HuffmanCodec()
        codec.encode(buf)
        misses_after_first = huffman.table_cache_stats()["misses"]
        out1 = codec.encode(buf)
        stats = huffman.table_cache_stats()
        assert stats["hits"] >= 2  # lengths + canonical codes at minimum
        assert stats["misses"] == misses_after_first
        assert out1 == codec.encode(buf)

    def test_repeat_decode_hits_lut_cache(self):
        buf = bytes(np.random.default_rng(1).integers(0, 9, 4096, dtype=np.uint8))
        codec = huffman.HuffmanCodec()
        enc = codec.encode(buf)
        assert codec.decode(enc) == buf
        hits_before = huffman.table_cache_stats()["hits"]
        assert codec.decode(enc) == buf
        assert huffman.table_cache_stats()["hits"] > hits_before

    def test_cached_tables_are_read_only(self):
        freq = np.bincount(np.frombuffer(b"aabbbbcc", np.uint8), minlength=256)
        lengths = huffman.code_lengths_from_frequencies(freq)
        with pytest.raises(ValueError):
            lengths[0] = 1
        codes = huffman.canonical_codes(lengths)
        with pytest.raises(ValueError):
            codes[0] = 1

    def test_distinct_histograms_do_not_collide(self):
        a = np.bincount(np.frombuffer(b"aaab", np.uint8), minlength=256)
        b = np.bincount(np.frombuffer(b"abbb", np.uint8), minlength=256)
        la = huffman.code_lengths_from_frequencies(a)
        lb = huffman.code_lengths_from_frequencies(b)
        assert not np.array_equal(la, lb) or la is not lb

    def test_reset_clears_counters(self):
        freq = np.bincount(np.frombuffer(b"xyzz", np.uint8), minlength=256)
        huffman.code_lengths_from_frequencies(freq)
        huffman.reset_table_cache()
        assert huffman.table_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestAnsTableCache:
    def test_repeat_normalization_hits_cache(self):
        counts = np.bincount(
            np.random.default_rng(2).integers(0, 17, 4096, dtype=np.uint8), minlength=256
        )
        f1 = ans.normalize_frequencies(counts)
        stats1 = ans.table_cache_stats()
        f2 = ans.normalize_frequencies(counts.copy())
        stats2 = ans.table_cache_stats()
        assert stats2["hits"] == stats1["hits"] + 1
        assert f1 is f2  # shared read-only table

    def test_round_trip_with_cache(self):
        buf = bytes(np.random.default_rng(3).integers(0, 50, 5000, dtype=np.uint8))
        codec = ans.RansCodec()
        enc = codec.encode(buf)
        assert codec.decode(enc) == buf
        hits_before = ans.table_cache_stats()["hits"]
        assert codec.decode(enc) == buf  # decode tables now cached
        assert ans.table_cache_stats()["hits"] > hits_before
