"""LC-style pipeline search tool."""

import pytest

from repro.encoders.pipelines import get_pipeline
from repro.encoders.search import (
    enumerate_pipelines,
    pareto_front,
    search_pipelines,
)


class TestEnumerate:
    def test_ends_with_reducer(self):
        for name in enumerate_pipelines(max_stages=2, with_huffman=False):
            assert name.split("-")[-1].rstrip("0123456789") in ("RRE", "RZE", "CLOG")

    def test_no_repeated_stage(self):
        for name in enumerate_pipelines(max_stages=3, with_huffman=False):
            stages = name.split("-")
            for a, b in zip(stages, stages[1:]):
                assert a != b

    def test_huffman_variants_doubled(self):
        plain = enumerate_pipelines(max_stages=2, with_huffman=False)
        both = enumerate_pipelines(max_stages=2, with_huffman=True)
        assert len(both) == 2 * len(plain)

    def test_paper_tp_pipeline_enumerable(self):
        names = enumerate_pipelines(max_stages=3, with_huffman=False)
        assert "TCMS1-BIT1-RRE1" in names

    def test_paper_cr_chain_enumerable(self):
        names = enumerate_pipelines(max_stages=3, with_huffman=True)
        assert "HF+RRE4-TCMS8-RZE1" in names


class TestSearch:
    @pytest.fixture(scope="class")
    def results(self, quantcode_bytes):
        candidates = enumerate_pipelines(
            vocabulary=("RRE1", "RZE1", "TCMS1", "BIT1"), max_stages=2
        )
        return search_pipelines(quantcode_bytes[:50_000], candidates)

    def test_sorted_by_ratio(self, results):
        crs = [r.cr for r in results]
        assert crs == sorted(crs, reverse=True)

    def test_all_candidates_measured(self, results):
        # 2-stage vocabulary of 4 with pruning: every candidate round-trips.
        assert len(results) >= 8

    def test_search_finds_tp_class_pipeline(self, results, quantcode_bytes):
        """A TCMS/BIT + reducer chain must appear in the top half — the
        §5.2.2 discovery the paper's search made."""
        top = [r.name for r in results[: len(results) // 2]]
        assert any("TCMS1" in n or "BIT1" in n for n in top)

    def test_pareto(self, results):
        front = pareto_front(results)
        assert front
        # No member may be dominated by any other result.
        for f in front:
            assert not any(
                (o.cr > f.cr and o.overall_gibs >= f.overall_gibs)
                or (o.cr >= f.cr and o.overall_gibs > f.overall_gibs)
                for o in results
            )

    def test_pareto_min_throughput(self, results):
        front = pareto_front(results, min_gibs=1e9)
        assert front == []


def test_search_agrees_with_direct_encode(quantcode_bytes):
    payload = quantcode_bytes[:30_000]
    res = search_pipelines(payload, ["TCMS1-BIT1-RRE1"])
    direct = get_pipeline("TCMS1-BIT1-RRE1")
    expect = len(payload) / len(direct.encode(payload))
    assert res[0].cr == pytest.approx(expect)
