"""Bitcomp / GPULZ / ndzip / deflate / fixed-length codec behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.bitcomp import BitcompCodec
from repro.encoders.deflate import GDEFLATE, LZ4_SURROGATE, ZSTD_SURROGATE
from repro.encoders.fixedlen import FixedLengthCodec
from repro.encoders.gpulz import GpuLzCodec
from repro.encoders.huffman import HuffmanCodec
from repro.encoders.ndzip import NdzipCodec

ROUNDTRIP_CODECS = [
    BitcompCodec(),
    GpuLzCodec(),
    NdzipCodec(),
    GDEFLATE,
    LZ4_SURROGATE,
    ZSTD_SURROGATE,
    FixedLengthCodec(),
]


@pytest.mark.parametrize("codec", ROUNDTRIP_CODECS, ids=lambda c: c.name)
def test_roundtrip_varied_payloads(codec, rng, quantcode_bytes):
    payloads = [
        b"",
        b"\x01",
        bytes(1000),
        rng.integers(0, 256, 4097).astype(np.uint8).tobytes(),
        quantcode_bytes[:30_000],
        np.linspace(0, 1, 2500, dtype=np.float32).tobytes(),
    ]
    for data in payloads:
        assert codec.decode(codec.encode(data)) == data


class TestBitcomp:
    def test_smooth_integers_compress(self):
        data = (np.arange(20_000) // 64).astype(np.uint8).tobytes()
        # Deltas are {0, 1}; zigzag makes them 2-bit -> ~3.9x with headers.
        assert BitcompCodec().ratio_on(data) > 3

    def test_entropy_coded_data_does_not(self, quantcode_bytes):
        """Table 1 contrast: Bitcomp gets ~1x on already-entropy-coded data
        but multiples on raw quantization codes."""
        hf = HuffmanCodec().encode(quantcode_bytes)
        bc = BitcompCodec()
        assert bc.ratio_on(hf) < 1.6
        assert bc.ratio_on(quantcode_bytes) > 1.5
        assert bc.ratio_on(quantcode_bytes) > bc.ratio_on(hf)

    def test_never_expands_much(self, rng):
        data = rng.integers(0, 256, 10_000).astype(np.uint8).tobytes()
        enc = BitcompCodec().encode(data)
        assert len(enc) <= len(data) + 16  # stored-mode fallback


class TestGpuLz:
    def test_repeated_words_dedupe(self):
        data = (b"ABCDEFGH" * 4000)
        codec = GpuLzCodec()
        enc = codec.encode(data)
        # ~2.6 bytes/word (flag bit + u16 ref) against 8-byte words.
        assert len(enc) < len(data) / 3
        assert codec.decode(enc) == data

    def test_block_locality(self):
        # Matches only within a block: two far-apart repeats still round-trip.
        blockbytes = GpuLzCodec().block_words * 8
        data = b"\x11" * 100 + bytes(blockbytes) + b"\x11" * 100
        codec = GpuLzCodec()
        assert codec.decode(codec.encode(data)) == data


class TestNdzip:
    def test_smooth_floats_compress(self):
        data = np.linspace(0, 1, 50_000, dtype=np.float32).tobytes()
        codec = NdzipCodec()
        enc = codec.encode(data)
        assert len(enc) < len(data)
        assert codec.decode(enc) == data


class TestFixedLength:
    def test_int_roundtrip_negatives(self, rng):
        vals = rng.integers(-(2**20), 2**20, 5000).astype(np.int32)
        codec = FixedLengthCodec()
        assert np.array_equal(codec.decode_ints(codec.encode_ints(vals)), vals)

    def test_zero_blocks_nearly_free(self):
        vals = np.zeros(32 * 1000, dtype=np.int32)
        enc = FixedLengthCodec(block=32).encode_ints(vals)
        assert len(enc) < 300  # bitmap only

    def test_small_values_tight(self):
        vals = np.ones(32_000, dtype=np.int32)
        enc = FixedLengthCodec(block=32).encode_ints(vals)
        # zigzag(1)=2 -> 2 bits per value + widths + bitmap
        assert len(enc) < 32_000 * 2.5 / 8 + 1200

    def test_extreme_values(self):
        vals = np.array([2**31 - 1, -(2**31) + 1, 0, -1], dtype=np.int32)
        codec = FixedLengthCodec(block=4)
        assert np.array_equal(codec.decode_ints(codec.encode_ints(vals)), vals)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-(2**31) + 1, 2**31 - 1), min_size=0, max_size=300))
    def test_property_roundtrip(self, values):
        vals = np.array(values, dtype=np.int32)
        codec = FixedLengthCodec(block=16)
        assert np.array_equal(codec.decode_ints(codec.encode_ints(vals)), vals)


def test_deflate_levels_order(quantcode_bytes):
    """Zstd surrogate (level 9) must not lose to LZ4 surrogate (level 1)."""
    lz4 = len(LZ4_SURROGATE.encode(quantcode_bytes))
    zstd = len(ZSTD_SURROGATE.encode(quantcode_bytes))
    assert zstd <= lz4
