"""ByteBudgetLRU in isolation: accounting, eviction order, disable, threads."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.server import ByteBudgetLRU


class TestAccounting:
    def test_used_bytes_tracks_inserts(self):
        cache = ByteBudgetLRU(1000)
        assert cache.put("a", b"x" * 100)
        assert cache.put("b", b"y" * 250)
        stats = cache.stats()
        assert stats["used_bytes"] == 350
        assert stats["entries"] == 2

    def test_ndarray_sizes_use_nbytes(self):
        cache = ByteBudgetLRU(10_000)
        arr = np.zeros((10, 10), dtype=np.float32)
        cache.put("field", arr)
        assert cache.stats()["used_bytes"] == arr.nbytes

    def test_explicit_nbytes_override(self):
        cache = ByteBudgetLRU(1000)
        cache.put("k", ("origin", "payload"), nbytes=640)
        assert cache.stats()["used_bytes"] == 640

    def test_refreshing_a_key_replaces_its_size(self):
        cache = ByteBudgetLRU(1000)
        cache.put("a", b"x" * 400)
        cache.put("a", b"x" * 100)
        stats = cache.stats()
        assert stats["used_bytes"] == 100
        assert stats["entries"] == 1

    def test_invalidate_returns_bytes_to_budget(self):
        cache = ByteBudgetLRU(1000)
        cache.put("a", b"x" * 400)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        stats = cache.stats()
        assert stats["used_bytes"] == 0
        assert stats["evictions"] == 0  # invalidation is not an eviction

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(-1)


class TestEviction:
    def test_lru_order(self):
        cache = ByteBudgetLRU(300)
        cache.put("a", b"a" * 100)
        cache.put("b", b"b" * 100)
        cache.put("c", b"c" * 100)
        assert cache.get("a") is not None  # refresh "a": now "b" is LRU
        cache.put("d", b"d" * 100)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats()["evictions"] == 1

    def test_one_insert_can_evict_many(self):
        cache = ByteBudgetLRU(300)
        for name in "abc":
            cache.put(name, name.encode() * 100)
        cache.put("big", b"x" * 300)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["evictions"] == 3
        assert stats["used_bytes"] == 300

    def test_oversized_value_is_rejected_not_cached(self):
        cache = ByteBudgetLRU(100)
        cache.put("small", b"s" * 80)
        assert not cache.put("huge", b"x" * 101)
        stats = cache.stats()
        assert stats["rejected"] == 1
        assert stats["evictions"] == 0
        assert "small" in cache  # the resident entry survived

    def test_hit_miss_counters(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", b"x")
        assert cache.get("a") is not None
        assert cache.get("a") is not None
        assert cache.get("zz") is None
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (2, 1)
        assert stats["hit_rate"] == pytest.approx(2 / 3)


class TestDisabled:
    def test_zero_budget_disables_everything(self):
        cache = ByteBudgetLRU(0)
        assert not cache.enabled
        assert not cache.put("a", b"x")
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["used_bytes"] == 0
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0


class TestConcurrency:
    def test_hammering_from_threads_keeps_accounting_consistent(self):
        cache = ByteBudgetLRU(64 * 40)  # room for ~40 of 100 distinct entries
        errors = []

        def worker(seed: int):
            try:
                for i in range(300):
                    key = (seed * 7 + i) % 100
                    if cache.get(key) is None:
                        cache.put(key, bytes(64), nbytes=64)
            except Exception as exc:  # noqa: BLE001 — fail the test, not the thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["used_bytes"] == stats["entries"] * 64
        assert stats["used_bytes"] <= cache.budget_bytes
        assert stats["hits"] + stats["misses"] == 8 * 300
