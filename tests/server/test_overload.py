"""Overload and drain guardrails: 429 under saturation, 503 on expired
deadlines, graceful SIGTERM drain with in-flight completion.

The scenarios drive a real server past its admission bound with genuinely
concurrent TCP requests, so the tests prove the guardrails under the same
conditions production sees — not by calling private methods.
"""

from __future__ import annotations

import asyncio
import os
import signal

import numpy as np
import pytest


@pytest.fixture()
def field32():
    """Big enough that one compress takes tens of milliseconds — concurrent
    requests genuinely overlap inside the admission window."""
    rng = np.random.default_rng(11)
    return rng.normal(size=(32, 32, 32)).astype(np.float32)


def _compress_target(field: np.ndarray) -> str:
    return f"/compress?shape={','.join(map(str, field.shape))}&eb=1e-3"


class TestAdmissionControl:
    def test_saturated_queue_gets_429_with_retry_after(self, serve, http, field32):
        """queue_depth=1: of 6 concurrent compresses, the overflow gets 429 +
        a Retry-After estimate while admitted ones still succeed."""

        async def scenario(server):
            responses = await asyncio.gather(
                *[
                    http(server, "POST", _compress_target(field32), field32.tobytes())
                    for _ in range(6)
                ]
            )
            stats = (await http(server, "GET", "/stats")).json()
            return responses, stats

        responses, stats = serve(scenario, queue_depth=1)
        statuses = sorted(r.status for r in responses)
        assert 200 in statuses, "admitted requests must still complete"
        assert 429 in statuses, "overflow must be refused, not queued forever"
        for resp in responses:
            if resp.status == 429:
                retry_after = int(resp.headers["retry-after"])
                assert 1 <= retry_after <= 60
                assert b"error" in resp.body
        assert stats["admission"]["rejected_429"] == statuses.count(429)
        assert stats["responses"]["4xx"] >= statuses.count(429)

    def test_pooled_saturation_gets_429(self, serve, http, field32):
        """The same bound holds when admission is enforced by the pool."""

        async def scenario(server):
            responses = await asyncio.gather(
                *[
                    http(server, "POST", _compress_target(field32), field32.tobytes())
                    for _ in range(8)
                ]
            )
            stats = (await http(server, "GET", "/stats")).json()
            return responses, stats

        responses, stats = serve(scenario, worker_procs=2, queue_depth=2)
        statuses = [r.status for r in responses]
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 2
        assert statuses.count(429) >= 1
        assert stats["pool"]["rejected"] == statuses.count(429)
        for resp in responses:
            if resp.status == 429:
                assert 1 <= int(resp.headers["retry-after"]) <= 60


class TestDeadlines:
    def test_expired_deadline_gets_503_single_process(self, serve, http, field32):
        """deadline_ms=1 cannot cover a real compress: 503, counted."""

        async def scenario(server):
            resp = await http(server, "POST", _compress_target(field32), field32.tobytes())
            stats = (await http(server, "GET", "/stats")).json()
            return resp, stats

        resp, stats = serve(scenario, deadline_ms=1.0)
        assert resp.status == 503
        assert b"deadline" in resp.body
        assert stats["admission"]["expired_503"] == 1

    def test_expired_deadline_gets_503_pooled(self, serve, http, field32):
        """A 1 ms deadline cannot cover a pooled compress: the frontend
        answers 503 at the deadline, and the abandoned task is eventually
        accounted by the pool — ``expired`` if the worker pre-checked it at
        dequeue, ``late_results`` if it computed an answer nobody wanted."""

        async def scenario(server):
            resp = await http(server, "POST", _compress_target(field32), field32.tobytes())
            for _ in range(100):  # the worker's verdict races the 503
                stats = (await http(server, "GET", "/stats")).json()
                if stats["pool"]["expired"] + stats["pool"]["late_results"] >= 1:
                    break
                await asyncio.sleep(0.05)
            return resp, stats

        resp, stats = serve(scenario, worker_procs=2, deadline_ms=1.0)
        assert resp.status == 503
        assert b"deadline" in resp.body
        assert stats["admission"]["expired_503"] == 1
        assert stats["pool"]["expired"] + stats["pool"]["late_results"] == 1
        assert stats["pool"]["completed"] == 0

    def test_pooled_deadline_covers_started_work(self, serve, http):
        """A task a worker *starts* in time but cannot finish in budget still
        gets 503 — the deadline bounds total latency, not just queue wait —
        and the worker's unwanted answer is counted as a late result.

        An injected one-second stall (``repro.faults``) stands in for the
        slow compress, so the timing holds on any hardware: the payload is
        tiny (dequeue happens well inside the deadline, passing the worker's
        pre-check), the stall then burns the whole budget mid-task, and the
        worker's eventual answer arrives after the frontend gave up."""
        from repro.faults import FaultPlan, FaultSpec, ReproFaults

        tiny = np.zeros((8, 8, 8), dtype=np.float32)
        plan = FaultPlan(
            [FaultSpec("pool.worker-task", "stall", at=1, count=1, arg=1.0)], seed=7
        )

        async def scenario(server):
            resp = await http(server, "POST", _compress_target(tiny), tiny.tobytes())
            for _ in range(200):  # wait for the worker to finish the unwanted work
                stats = (await http(server, "GET", "/stats")).json()
                if stats["pool"]["late_results"] >= 1:
                    break
                await asyncio.sleep(0.05)
            return resp, stats

        with ReproFaults(plan):
            resp, stats = serve(scenario, worker_procs=2, deadline_ms=200.0)
        assert resp.status == 503
        assert b"deadline" in resp.body
        assert stats["admission"]["expired_503"] >= 1
        assert stats["pool"]["late_results"] >= 1

    def test_generous_deadline_does_not_reject(self, serve, http, field32):
        async def scenario(server):
            return await http(server, "POST", _compress_target(field32), field32.tobytes())

        assert serve(scenario, deadline_ms=60_000.0).status == 200


class TestGracefulDrain:
    def test_sigterm_finishes_inflight_and_refuses_new(
        self, serve, http, field32, monkeypatch
    ):
        """SIGTERM mid-request: the in-flight compress completes with 200,
        new work gets 503, probes stay live, then the server stops itself.

        The in-flight compress is artificially slowed (the
        ``test_batching.py`` monkeypatch idiom) so the drain window is wide
        enough to probe deterministically."""
        import time as time_mod

        from repro.server import batching

        real_compress_one = batching._compress_one

        def slow_compress_one(job):
            time_mod.sleep(0.6)
            return real_compress_one(job)

        monkeypatch.setattr(batching, "_compress_one", slow_compress_one)

        async def scenario(server):
            server.install_signal_handlers()
            inflight = asyncio.ensure_future(
                http(server, "POST", _compress_target(field32), field32.tobytes())
            )
            await asyncio.sleep(0.05)  # let the request reach the engine
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.sleep(0.05)  # let the drain task take effect

            health = await http(server, "GET", "/healthz")
            assert health.status == 200
            assert health.json()["status"] == "draining"
            refused = await http(server, "POST", _compress_target(field32), field32.tobytes())
            assert refused.status == 503
            assert b"draining" in refused.body
            stats = (await http(server, "GET", "/stats")).json()
            assert stats["draining"] is True
            assert stats["admission"]["draining_503"] >= 1

            completed = await inflight
            assert completed.status == 200, "in-flight request must finish during drain"
            assert server._drain_task is not None
            await server._drain_task
            assert server._server is None, "drain must stop the listener when done"
            return completed

        serve(scenario)

    def test_drain_is_idempotent(self, serve):
        """A second SIGTERM while draining must not start a second drain."""

        async def scenario(server):
            server.install_signal_handlers()
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.sleep(0.02)
            first = server._drain_task
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.sleep(0.02)
            assert server._drain_task is first
            await first
            return True

        assert serve(scenario)
