"""GET /stats codec-table counters: identical micro-batched histograms must
show table-cache hits instead of rebuilt tables (the satellite contract)."""

from repro.encoders import huffman


class TestCodecTableStats:
    def test_stats_exposes_codec_table_counters(self, serve, http):
        async def scenario(server):
            resp = await http(server, "GET", "/stats")
            assert resp.status == 200
            return resp.json()

        doc = serve(scenario)
        tables = doc["codec_tables"]
        for section in ("huffman", "ans", "interp_plans"):
            assert {"hits", "misses", "entries"} <= set(tables[section])
        assert {"hits", "misses"} <= set(doc["archive_blob_cache"])

    def test_identical_compress_requests_hit_table_cache(self, serve, http, field16):
        huffman.reset_table_cache()
        body = field16.tobytes()
        target = "/compress?shape=16,16,16&dtype=float32&eb=1e-3"

        async def scenario(server):
            first = await http(server, "POST", target, body)
            assert first.status == 200
            mid = await http(server, "GET", "/stats")
            second = await http(server, "POST", target, body)
            assert second.status == 200
            assert second.body == first.body  # deterministic blob
            after = await http(server, "GET", "/stats")
            return mid.json(), after.json()

        mid_doc, after_doc = serve(scenario)
        mid_t, after_t = mid_doc["codec_tables"], after_doc["codec_tables"]
        # The second identical request reuses the memoized Huffman tables:
        # hits grow, misses do not.
        assert after_t["huffman"]["hits"] > mid_t["huffman"]["hits"]
        assert after_t["huffman"]["misses"] == mid_t["huffman"]["misses"]

    def test_repeated_tile_reads_hit_blob_cache(self, serve, http, seeded_archive):
        import pytest

        from repro.service.archive import _blob_cache, clear_blob_cache

        if not _blob_cache.enabled:
            pytest.skip("parsed-frame cache disabled via REPRO_BLOB_CACHE_BYTES=0")
        clear_blob_cache()

        async def scenario(server):
            r1 = await http(server, "GET", "/archives/corpus/fields/tiled?tile=0")
            assert r1.status == 200
            mid = (await http(server, "GET", "/stats")).json()
            # A *different* tile of the same entry: the decoded-tile LRU
            # misses, but the parsed-frame cache must hit.
            r2 = await http(server, "GET", "/archives/corpus/fields/tiled?tile=1")
            assert r2.status == 200
            after = (await http(server, "GET", "/stats")).json()
            return mid, after

        mid, after = serve(scenario)
        assert after["archive_blob_cache"]["hits"] > mid["archive_blob_cache"]["hits"]
