"""End-to-end tests for the async compression service over localhost.

Each test gets the ``serve`` fixture (runs an async scenario against a real
server on a free port, archive root = ``tmp_path``) and the ``http`` fixture
(one HTTP/1.1 exchange over a fresh TCP connection).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.container import CompressedBlob


class TestHealthAndStats:
    def test_healthz(self, serve, http):
        import repro
        from repro.api import REQUEST_SCHEMA

        async def scenario(server):
            resp = await http(server, "GET", "/healthz")
            assert resp.status == 200
            doc = resp.json()
            assert doc["status"] == "ok"
            # one version source: the package version + request schema id
            assert doc["version"] == repro.__version__
            assert doc["request_schema"] == REQUEST_SCHEMA

        serve(scenario)

    def test_fixed_rate_codec_reachable_via_opt_params(self, serve, http, field16):
        """Codec options ride as opt.* query keys, so cuzfp (which needs a
        rate) is usable over HTTP — not just advertised by /codecs."""

        async def scenario(server):
            body = field16.tobytes()
            resp = await http(
                server, "POST", "/compress?shape=16,16,16&codec=cuzfp&opt.rate=8", body
            )
            assert resp.status == 200
            assert resp.headers["x-repro-codec"] == "cuzfp"
            back = await http(server, "POST", "/decompress", resp.body)
            assert back.status == 200
            # Without the rate option the request is a clean 400 naming cuzfp.
            refused = await http(server, "POST", "/compress?shape=16,16,16&codec=cuzfp", body)
            assert refused.status == 400
            assert "cuzfp" in refused.json()["error"]

        serve(scenario)

    def test_codecs_endpoint_lists_registry(self, serve, http):
        from repro.api import registry

        async def scenario(server):
            resp = await http(server, "GET", "/codecs")
            assert resp.status == 200
            doc = resp.json()
            assert set(doc["codecs"]) == set(registry.names())
            assert doc["codecs"]["cusz-hi-cr"]["tiling"] is True
            assert doc["codecs"]["fzgpu"]["dims"] == [1, 2, 3]
            assert (await http(server, "POST", "/codecs", b"x")).status == 405

        serve(scenario)

    def test_stats_shape(self, serve, http):
        async def scenario(server):
            resp = await http(server, "GET", "/stats")
            assert resp.status == 200
            doc = resp.json()
            for block in ("cache", "batcher", "jobs", "responses"):
                assert block in doc
            assert doc["cache"]["budget_bytes"] == server.cache.budget_bytes

        serve(scenario)


class TestComputeEndpoints:
    def test_compress_decompress_roundtrip(self, serve, http, field16):
        async def scenario(server):
            resp = await http(
                server, "POST", "/compress?shape=16,16,16&eb=1e-3", field16.tobytes()
            )
            assert resp.status == 200
            assert resp.headers["x-repro-codec"] == "cusz-hi-cr"
            assert float(resp.headers["x-repro-cr"]) > 1.0
            blob = CompressedBlob.from_bytes(resp.body)

            back = await http(server, "POST", "/decompress", resp.body)
            assert back.status == 200
            recon = back.array()
            assert recon.shape == field16.shape
            err = np.abs(field16.astype(np.float64) - recon.astype(np.float64)).max()
            assert err <= blob.error_bound

        serve(scenario)

    def test_compress_tiled_and_tp_mode(self, serve, http, field16):
        async def scenario(server):
            resp = await http(
                server,
                "POST",
                "/compress?shape=16,16,16&eb=1e-3&tiles=8,8,8&mode=tp",
                field16.tobytes(),
            )
            assert resp.status == 200
            assert resp.headers["x-repro-codec"] == "cusz-hi-tiled"

        serve(scenario)

    def test_concurrent_compress_requests_coalesce(self, serve, http, field16):
        async def scenario(server):
            body = field16.tobytes()
            responses = await asyncio.gather(
                *[
                    http(server, "POST", "/compress?shape=16,16,16&eb=1e-3", body)
                    for _ in range(6)
                ]
            )
            assert all(r.status == 200 for r in responses)
            # Identical inputs must produce byte-identical containers no
            # matter how the batcher grouped them.
            assert len({r.body for r in responses}) == 1
            stats = (await http(server, "GET", "/stats")).json()["batcher"]
            assert stats["requests"] == 6
            assert stats["batches"] <= 6
            return stats

        # A generous window so the gather lands in one or two batches.
        stats = serve(scenario, batch_window_ms=100.0)
        assert stats["largest_batch"] >= 2
        assert stats["coalesced_requests"] >= 2


class TestArchiveReads:
    def test_whole_field_read(self, serve, http, field16, seeded_archive):
        async def scenario(server):
            resp = await http(server, "GET", "/archives/corpus/fields/plain")
            assert resp.status == 200
            assert resp.headers["x-repro-source"] == "store"
            recon = resp.array()
            assert recon.shape == field16.shape

            listing = await http(server, "GET", "/archives/corpus")
            assert listing.status == 200
            names = {e["name"] for e in listing.json()["entries"]}
            assert names == {"plain", "tiled"}

            catalog = await http(server, "GET", "/archives")
            assert catalog.json()["archives"] == ["corpus.rpza"]

        serve(scenario)

    def test_repeated_tile_read_hits_cache(self, serve, http, seeded_archive):
        async def scenario(server):
            first = await http(server, "GET", "/archives/corpus/fields/tiled?tile=3")
            assert first.status == 200
            assert first.headers["x-repro-source"] == "store"
            assert first.headers["x-repro-shape"] == "8,8,8"
            assert "x-repro-tile-origin" in first.headers

            second = await http(server, "GET", "/archives/corpus/fields/tiled?tile=3")
            assert second.status == 200
            assert second.headers["x-repro-source"] == "cache"
            assert second.body == first.body

            cache = (await http(server, "GET", "/stats")).json()["cache"]
            assert cache["hits"] >= 1
            assert cache["misses"] >= 1

        serve(scenario)

    def test_cache_eviction_under_byte_pressure(self, serve, http, field16, seeded_archive):
        async def scenario(server):
            # Budget fits exactly one whole field, so alternating whole-field
            # reads must evict each other.
            for _ in range(2):
                assert (await http(server, "GET", "/archives/corpus/fields/plain")).status == 200
                assert (await http(server, "GET", "/archives/corpus/fields/tiled")).status == 200
            cache = (await http(server, "GET", "/stats")).json()["cache"]
            assert cache["evictions"] >= 2
            assert cache["used_bytes"] <= cache["budget_bytes"]

        serve(scenario, cache_bytes=field16.nbytes + 512)

    def test_zero_budget_disables_cache(self, serve, http, seeded_archive):
        async def scenario(server):
            for _ in range(2):
                resp = await http(server, "GET", "/archives/corpus/fields/tiled?tile=0")
                assert resp.status == 200
                assert resp.headers["x-repro-source"] == "store"
            cache = (await http(server, "GET", "/stats")).json()["cache"]
            assert cache["hits"] == 0
            assert cache["entries"] == 0

        serve(scenario, cache_bytes=0)

    def test_concurrent_mixed_reads_and_compress(self, serve, http, field16, seeded_archive):
        async def scenario(server):
            body = field16.tobytes()
            tasks = []
            for i in range(4):
                tasks.append(http(server, "GET", "/archives/corpus/fields/plain"))
                tasks.append(http(server, "GET", f"/archives/corpus/fields/tiled?tile={i % 8}"))
                tasks.append(http(server, "POST", "/compress?shape=16,16,16", body))
                tasks.append(http(server, "GET", "/healthz"))
            responses = await asyncio.gather(*tasks)
            assert [r.status for r in responses] == [200] * len(responses)
            stats = (await http(server, "GET", "/stats")).json()
            assert stats["responses"]["2xx"] >= len(responses)
            assert stats["responses"].get("5xx", 0) == 0

        serve(scenario)


class TestJobLifecycle:
    MANIFEST = {
        "job": {"name": "served-corpus", "eb": 1e-3},
        "fields": [
            {"name": "a", "dataset": "nyx", "shape": [16, 16, 16]},
            {"name": "b", "dataset": "miranda", "shape": [16, 16, 16], "tiles": [8, 8, 8]},
        ],
    }

    def test_submit_poll_report_then_read(self, serve, http, poll):
        async def scenario(server):
            resp = await http(
                server,
                "POST",
                "/jobs?archive=served.rpza",
                json.dumps(self.MANIFEST).encode(),
            )
            assert resp.status == 202
            submitted = resp.json()
            assert submitted["status"] in ("queued", "running")
            assert submitted["fields"] == 2

            done = await poll(server, submitted["id"])
            assert done["status"] == "done"
            report = done["report"]
            assert report["schema"] == "repro.batch-report/1"
            assert report["totals"]["ok"] == 2
            assert {f["name"] for f in report["fields"]} == {"a", "b"}

            # The archive the job wrote is immediately servable.
            read = await http(server, "GET", "/archives/served/fields/b?tile=0")
            assert read.status == 200
            assert read.headers["x-repro-shape"] == "8,8,8"
            jobs = (await http(server, "GET", "/stats")).json()["jobs"]
            assert jobs["done"] == 1

        serve(scenario)

    def test_job_with_failing_field_reports_it(self, serve, http, poll):
        manifest = {
            "fields": [
                {"name": "ok", "dataset": "nyx", "shape": [12, 12, 12]},
                {"name": "gone", "path": "missing.f32"},
            ]
        }

        async def scenario(server):
            resp = await http(server, "POST", "/jobs", json.dumps(manifest).encode())
            assert resp.status == 202
            done = await poll(server, resp.json()["id"])
            assert done["status"] == "done"  # the *job* ran; one field failed
            assert done["report"]["totals"]["failed"] == 1
            assert done["report"]["totals"]["ok"] == 1

        serve(scenario)

    def test_invalid_manifest_rejected_at_submit(self, serve, http):
        async def scenario(server):
            resp = await http(server, "POST", "/jobs", b'{"fields": []}')
            assert resp.status == 400
            assert "fields" in resp.json()["error"]
            # Nothing was queued.
            assert (await http(server, "GET", "/stats")).json()["jobs"]["total"] == 0

        serve(scenario)

    def test_unknown_job_404(self, serve, http):
        async def scenario(server):
            assert (await http(server, "GET", "/jobs/job-999")).status == 404

        serve(scenario)


class TestMalformedRequests:
    """Every client mistake must come back as a clean 4xx JSON error."""

    @pytest.mark.parametrize(
        "target, body",
        [
            ("/compress", b""),  # missing shape
            ("/compress?shape=0,4", b""),  # non-positive dims
            ("/compress?shape=abc", b""),  # unparsable dims
            ("/compress?shape=4294967296,4294967296", b""),  # overflowing product
            ("/compress?shape=4,4&dtype=int32", b"x" * 64),  # unsupported dtype
            ("/compress?shape=4,4&eb=nope", b"x" * 64),  # unparsable eb
            ("/compress?shape=4,4&mode=zz", b"x" * 64),  # unknown mode
            ("/compress?shape=4,4&eb=-1", b"x" * 64),  # non-positive eb
            ("/compress?shape=4,4&codec=gzip", b"x" * 64),  # unknown codec
            ("/compress?shape=4,4&codec=fzgpu&tiles=2,2", b"x" * 64),  # no tiling
            ("/compress?shape=4,4&workers=2", b"x" * 64),  # workers need tiles
            ("/compress?shape=4,4", b"xx"),  # body/shape mismatch
        ],
    )
    def test_compress_400s(self, serve, http, target, body):
        async def scenario(server):
            resp = await http(server, "POST", target, body)
            assert resp.status == 400
            assert "error" in resp.json()

        serve(scenario)

    def test_decompress_rejects_garbage(self, serve, http):
        async def scenario(server):
            resp = await http(server, "POST", "/decompress", b"not a container at all")
            assert resp.status == 400

        serve(scenario)

    def test_unknown_route_404(self, serve, http):
        async def scenario(server):
            assert (await http(server, "GET", "/nope")).status == 404
            assert (await http(server, "GET", "/archives/zz/fields/a")).status == 404

        serve(scenario)

    def test_wrong_method_405(self, serve, http):
        async def scenario(server):
            assert (await http(server, "POST", "/healthz")).status == 405
            assert (await http(server, "GET", "/compress")).status == 405

        serve(scenario)

    def test_field_read_4xx_paths(self, serve, http, seeded_archive):
        async def scenario(server):
            unknown = await http(server, "GET", "/archives/corpus/fields/zz")
            assert unknown.status == 404
            oob = await http(server, "GET", "/archives/corpus/fields/tiled?tile=999")
            assert oob.status == 404
            bad = await http(server, "GET", "/archives/corpus/fields/tiled?tile=x")
            assert bad.status == 400
            untiled = await http(server, "GET", "/archives/corpus/fields/plain?tile=0")
            assert untiled.status == 400

        serve(scenario)

    def test_traversal_names_rejected(self, serve, http, seeded_archive):
        async def scenario(server):
            resp = await http(server, "GET", "/archives/..%2Fcorpus/fields/plain")
            assert resp.status == 400

        serve(scenario)

    def test_malformed_request_line(self, serve):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(b"COMPLETE GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        serve(scenario)

    def test_post_without_content_length(self, serve):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(b"POST /compress HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"411" in raw.split(b"\r\n", 1)[0]

        serve(scenario)

    def test_oversized_body_413(self, serve, http):
        async def scenario(server):
            resp = await http(server, "POST", "/compress?shape=4,4", b"x" * 2048)
            assert resp.status == 413

        serve(scenario, max_body=1024)
