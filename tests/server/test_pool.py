"""Worker-pool tier: pooled serving must be indistinguishable from
single-process serving — same bytes, same headers, same error mapping —
while the work actually happens in spawned processes.

These tests boot real multi-process servers (``worker_procs=2``), so they
exercise spawn, the pipe transport, the dispatcher thread and the
consistent-hash cache shards end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.server import STATS_SCHEMA, HashRing


class TestHashRing:
    def test_deterministic_and_covers_all_nodes(self):
        ring = HashRing(3)
        keys = [f"corpus.rpza|field-{i}" for i in range(128)]
        homes = [ring.node(k) for k in keys]
        assert homes == [ring.node(k) for k in keys], "routing must be deterministic"
        assert set(homes) == {0, 1, 2}, "128 keys must spread over all 3 workers"

    def test_resize_moves_few_keys(self):
        """Consistent hashing's point: adding a worker re-homes ~1/n of the
        keys, not all of them."""
        keys = [f"archive|f{i}" for i in range(256)]
        before = [HashRing(4).node(k) for k in keys]
        after = [HashRing(5).node(k) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        assert moved < len(keys) // 2, f"{moved}/256 keys moved on a 4 -> 5 resize"

    def test_single_node_and_validation(self):
        assert HashRing(1).node("anything") == 0
        with pytest.raises(ValueError):
            HashRing(0)


class TestPooledServing:
    def test_pooled_results_match_single_process(self, serve, http, field16, seeded_archive):
        """One scenario, every heavy endpoint: the pooled server's compress
        blob, decompress bytes, field/tile reads and /stats pool counters,
        checked against the single-process server's bytes."""
        shape = ",".join(map(str, field16.shape))

        async def scenario(server):
            comp = await http(
                server, "POST", f"/compress?shape={shape}&eb=1e-3", field16.tobytes()
            )
            assert comp.status == 200
            deco = await http(server, "POST", "/decompress", comp.body)
            assert deco.status == 200
            plain = await http(server, "GET", "/archives/corpus/fields/plain")
            assert plain.status == 200
            tile = await http(server, "GET", "/archives/corpus/fields/tiled?tile=3")
            assert tile.status == 200
            again = await http(server, "GET", "/archives/corpus/fields/plain")
            assert again.status == 200
            stats = (await http(server, "GET", "/stats")).json()
            return comp, deco, plain, tile, again, stats

        single = serve(scenario)
        pooled = serve(scenario, worker_procs=2, cache_bytes=1 << 20)

        s_comp, s_deco, s_plain, s_tile, _, s_stats = single
        p_comp, p_deco, p_plain, p_tile, p_again, p_stats = pooled
        assert p_comp.body == s_comp.body, "pooled compress must be byte-identical"
        for header in ("x-repro-codec", "x-repro-cr", "x-repro-eb-abs"):
            assert p_comp.headers[header] == s_comp.headers[header]
        assert p_deco.body == s_deco.body
        assert p_deco.headers["x-repro-shape"] == s_deco.headers["x-repro-shape"]
        assert p_plain.body == s_plain.body
        assert p_tile.body == s_tile.body
        assert p_tile.headers["x-repro-tile-origin"] == s_tile.headers["x-repro-tile-origin"]
        # Second read of the same field lands on the same shard's LRU.
        assert p_again.headers["x-repro-source"] == "worker-cache"

        assert s_stats["pool"] is None
        pool = p_stats["pool"]
        assert pool["workers"] == 2
        assert pool["completed"] >= 5
        assert pool["errors"] == 0 and pool["worker_restarts"] == 0
        assert pool["read_cache_hits"] >= 1
        assert len(pool["pids"]) == 2 and all(isinstance(p, int) for p in pool["pids"])

    def test_pooled_error_mapping(self, serve, http):
        """Worker-side failures map onto the single-process statuses: garbage
        container -> 400, missing archive -> 404 — never a 500."""

        async def scenario(server):
            bad = await http(server, "POST", "/decompress", b"this is not a container")
            missing = await http(server, "GET", "/archives/nope/fields/f")
            return bad, missing

        bad, missing = serve(scenario, worker_procs=2)
        assert bad.status == 400
        assert b"error" in bad.body
        assert missing.status == 404

    def test_stats_schema_is_versioned(self, serve, http, field16):
        """``repro.stats/1``: the counter sections dashboards pin, including
        the per-route latency histograms the guardrails feed."""
        shape = ",".join(map(str, field16.shape))

        async def scenario(server):
            assert (
                await http(server, "POST", f"/compress?shape={shape}&eb=1e-3", field16.tobytes())
            ).status == 200
            assert (await http(server, "GET", "/healthz")).status == 200
            assert (await http(server, "GET", "/stats")).status == 200
            # A request is observed as it completes, so the second scrape is
            # the one that can see "GET /stats" itself.
            return (await http(server, "GET", "/stats")).json()

        stats = serve(scenario)
        assert stats["schema"] == STATS_SCHEMA == "repro.stats/1"
        assert stats["draining"] is False
        admission = stats["admission"]
        assert set(admission) == {
            "queue_depth",
            "deadline_ms",
            "inflight_heavy",
            "rejected_429",
            "expired_503",
            "draining_503",
        }
        assert admission["rejected_429"] == 0 and admission["expired_503"] == 0
        compress_hist = stats["latency"]["POST /compress"]
        assert compress_hist["count"] == 1
        assert 0 < compress_hist["p50_ms"] <= compress_hist["p99_ms"] <= compress_hist["max_ms"]
        assert any(b["count"] for b in compress_hist["buckets"])
        assert stats["latency"]["GET /healthz"]["count"] == 1
        assert stats["latency"]["GET /stats"]["count"] >= 1


def test_route_key_collapses_names():
    from repro.server.app import _Request, _route_key

    cases = {
        "/archives/a.rpza": "GET /archives/{name}",
        "/archives/a/fields/temp": "GET /archives/{name}/fields/{field}",
        "/jobs/j123": "GET /jobs/{id}",
        "/stats": "GET /stats",
    }
    for target, expected in cases.items():
        req = _Request("GET", target, {}, b"")
        assert _route_key(req) == expected


def test_worker_runs_in_separate_process(serve, http):
    """The point of the tier: pooled work executes under different PIDs than
    the frontend."""
    import os

    async def scenario(server):
        stats = (await http(server, "GET", "/stats")).json()
        return stats["pool"]["pids"]

    pids = serve(scenario, worker_procs=2)
    assert os.getpid() not in pids
    assert len(set(pids)) == 2
