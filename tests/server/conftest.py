"""Server test harness: run scenarios against a real localhost server.

Every test spins up a real :class:`~repro.server.ReproServer` on an
OS-assigned port and talks to it over actual TCP with a minimal asyncio
HTTP/1.1 client — no mocked transports, so the request parser, the response
writer and the event-loop offloading are all exercised for real.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import compress
from repro.server import ReproServer
from repro.service import ArchiveStore


class Response:
    """What one HTTP exchange returned (status, lower-cased headers, body)."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    def array(self, dtype=None) -> np.ndarray:
        dtype = dtype or self.headers.get("x-repro-dtype", "float32")
        shape = tuple(int(d) for d in self.headers["x-repro-shape"].split(","))
        return np.frombuffer(self.body, dtype=dtype).reshape(shape)


async def request(server: ReproServer, method: str, target: str, body: bytes = b"") -> Response:
    """One HTTP/1.1 exchange over a fresh connection."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    head = (
        f"{method} {target} HTTP/1.1\r\nHost: {server.host}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_raw, _, payload = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return Response(status, headers, payload)


async def poll_job(server: ReproServer, job_id: str, timeout_s: float = 30.0) -> dict:
    """Poll ``GET /jobs/{id}`` until the job leaves the queue."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        resp = await request(server, "GET", f"/jobs/{job_id}")
        assert resp.status == 200
        doc = resp.json()
        if doc["status"] in ("done", "failed"):
            return doc
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"job {job_id} still {doc['status']} after {timeout_s}s")
        await asyncio.sleep(0.05)


@pytest.fixture()
def http():
    """The HTTP exchange helper, injected so test modules stay import-free."""
    return request


@pytest.fixture()
def poll():
    return poll_job


@pytest.fixture()
def serve(tmp_path):
    """Run ``scenario(server)`` against a live server rooted at ``tmp_path``."""

    def run_scenario(scenario, **server_kwargs):
        server_kwargs.setdefault("archive_root", str(tmp_path))
        server_kwargs.setdefault("port", 0)
        server_kwargs.setdefault("batch_window_ms", 2.0)

        async def main():
            server = ReproServer(**server_kwargs)
            await server.start()
            try:
                return await scenario(server)
            finally:
                await server.stop()

        return asyncio.run(main())

    return run_scenario


@pytest.fixture()
def field16():
    """Small deterministic field: fast to compress, non-trivial to predict."""
    return np.fromfunction(
        lambda i, j, k: np.sin(i / 5) * np.cos(j / 7) + k / 16, (16, 16, 16)
    ).astype(np.float32)


@pytest.fixture()
def seeded_archive(tmp_path, field16):
    """An archive with one plain entry and one 8-tile entry, pre-written."""
    path = tmp_path / "corpus.rpza"
    with ArchiveStore(str(path), mode="w", backend="file") as archive:
        archive.add_blob("plain", compress(field16, eb=1e-3))
        archive.add_blob("tiled", compress(field16, eb=1e-3, tile_shape=(8, 8, 8)))
    return path
