"""MicroBatcher unit tests — scheduling behavior, not HTTP plumbing."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.server import MicroBatcher


@pytest.fixture()
def small_field():
    return np.fromfunction(
        lambda i, j, k: np.sin(i / 5) * np.cos(j / 7) + k / 16, (16, 16, 16)
    ).astype(np.float32)


def test_single_request_round_trips(small_field):
    async def main():
        batcher = MicroBatcher(window_ms=1, workers=1)
        blob = await batcher.submit(small_field, eb=1e-3)
        await batcher.drain()
        return blob

    blob = asyncio.run(main())
    assert blob.shape == small_field.shape


def test_request_arriving_mid_batch_is_not_starved(small_field):
    """Regression: a request submitted while a previous batch is *computing*
    must get its own flush timer.  (Keying the timer on the previous flusher
    task being done() starves it: that task is still alive while its batch
    runs, so the late request would wait forever for a successor.)"""

    async def main():
        batcher = MicroBatcher(window_ms=1, max_batch=100, workers=1)
        # A couple of larger fields so the first batch computes long enough
        # for the follow-up request to land mid-flight.
        big = np.fromfunction(
            lambda i, j, k: np.sin(i / 9) * np.cos(j / 7) + k / 48, (48, 48, 48)
        ).astype(np.float32)
        first_wave = [asyncio.create_task(batcher.submit(big, eb=1e-3)) for _ in range(2)]
        await asyncio.sleep(0.05)  # well past the window: batch 1 is running
        late = asyncio.create_task(batcher.submit(small_field, eb=1e-3))
        # The late request must complete without any further submissions.
        results = await asyncio.wait_for(asyncio.gather(*first_wave, late), timeout=60)
        stats = batcher.stats()
        await batcher.drain()
        return results, stats

    results, stats = asyncio.run(main())
    assert len(results) == 3
    assert all(r is not None for r in results)
    assert stats["requests"] == 3
    assert stats["batches"] >= 2  # the late request formed its own batch


def test_failure_isolation_within_a_batch(small_field):
    async def main():
        batcher = MicroBatcher(window_ms=20, workers=1)
        bad = np.zeros((4, 4), dtype=np.int32)  # unsupported dtype
        good_task = asyncio.create_task(batcher.submit(small_field, eb=1e-3))
        bad_task = asyncio.create_task(batcher.submit(bad, eb=1e-3))
        good, bad_exc = await asyncio.gather(good_task, bad_task, return_exceptions=True)
        await batcher.drain()
        return good, bad_exc

    good, bad_exc = asyncio.run(main())
    assert good.shape == small_field.shape  # the good request was unaffected
    assert isinstance(bad_exc, TypeError)


def test_lpt_order_runs_largest_first(monkeypatch, small_field):
    observed = []

    import repro.server.batching as batching

    real = batching._compress_one

    def spy(job):
        observed.append(job[0].size)
        return real(job)

    monkeypatch.setattr(batching, "_compress_one", spy)

    async def main():
        batcher = MicroBatcher(window_ms=30, workers=1)
        big = np.fromfunction(
            lambda i, j, k: np.sin(i / 9) + k / 32, (32, 32, 32)
        ).astype(np.float32)
        tasks = [
            asyncio.create_task(batcher.submit(small_field, eb=1e-3)),
            asyncio.create_task(batcher.submit(big, eb=1e-3)),
        ]
        await asyncio.gather(*tasks)
        await batcher.drain()

    asyncio.run(main())
    assert observed == sorted(observed, reverse=True)  # largest first