"""Cross-cutting integration tests: fuzzing, corruption, edge geometries.

These exercise whole-stack paths that unit tests cannot: arbitrary shapes
through arbitrary codecs, stream corruption surfacing as clean errors rather
than wrong data, and the paper's headline cross-compressor relations on a
shared workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.harness import COMPRESSOR_FACTORIES, make_compressor
from repro.core.container import CompressedBlob, ContainerError

ALL_FIXED_EB = sorted(COMPRESSOR_FACTORIES)


@st.composite
def small_fields(draw):
    ndim = draw(st.integers(1, 3))
    dims = tuple(draw(st.integers(4, 22)) for _ in range(ndim))
    seed = draw(st.integers(0, 50))
    kind = draw(st.sampled_from(["smooth", "rough", "constant", "spiky"]))
    rng = np.random.default_rng(seed)
    if kind == "smooth":
        data = np.cumsum(rng.standard_normal(dims), axis=0)
    elif kind == "rough":
        data = rng.standard_normal(dims) * draw(st.floats(0.1, 100.0))
    elif kind == "constant":
        data = np.full(dims, draw(st.floats(-10, 10)))
    else:
        data = np.zeros(dims)
        flat = data.reshape(-1)
        idx = rng.integers(0, flat.size, max(1, flat.size // 10))
        flat[idx] = rng.standard_normal(idx.size) * 1e4
    return data.astype(np.float32)


class TestFuzzRoundtrip:
    @settings(max_examples=12, deadline=None)
    @given(field=small_fields(), codec=st.sampled_from(ALL_FIXED_EB), eb_exp=st.integers(-4, -1))
    def test_any_codec_any_field(self, field, codec, eb_exp):
        eb = 10.0**eb_exp
        comp = make_compressor(codec)
        blob = comp.compress(field, eb)
        out = make_compressor(codec).decompress(
            CompressedBlob.from_bytes(blob.to_bytes())
        )
        assert out.shape == field.shape
        assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    @settings(max_examples=8, deadline=None)
    @given(field=small_fields())
    def test_dispatcher_routes_all(self, field):
        for codec in ALL_FIXED_EB:
            blob = repro.compress(field, 1e-2, codec=codec)
            out = repro.decompress(blob.to_bytes())
            assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound


class TestFailureInjection:
    @pytest.fixture()
    def stream(self, smooth3d):
        return repro.compress(smooth3d, 1e-3).to_bytes()

    def test_truncation_detected(self, stream):
        for cut in (10, len(stream) // 2, len(stream) - 3):
            with pytest.raises(Exception):
                repro.decompress(stream[:cut])

    def test_every_segment_region_corruption_detected(self, stream, smooth3d):
        """Flipping a byte anywhere in the payload area must raise (CRC) or
        never silently produce an out-of-bound reconstruction."""
        raw = bytearray(stream)
        # Probe positions spread across the stream body (skip the header's
        # eb/dims fields, whose corruption legitimately changes metadata).
        positions = range(len(raw) // 4, len(raw), max(1, len(raw) // 8))
        for pos in positions:
            mutated = bytearray(raw)
            mutated[pos] ^= 0xFF
            try:
                out = repro.decompress(bytes(mutated))
            except Exception:
                continue  # clean failure is the expected outcome
            blob = CompressedBlob.from_bytes(stream)
            err = np.abs(smooth3d.astype(np.float64) - out.astype(np.float64)).max()
            assert err <= blob.error_bound, f"silent corruption at byte {pos}"

    def test_wrong_magic(self):
        with pytest.raises(ContainerError):
            repro.decompress(b"JUNKJUNKJUNK" * 10)

    def test_unknown_codec_id(self, stream):
        blob = CompressedBlob.from_bytes(stream)
        blob.codec = 209
        with pytest.raises(KeyError):
            repro.decompress(blob.to_bytes())


class TestEdgeGeometries:
    @pytest.mark.parametrize(
        "shape",
        [(1,), (2, 2), (1, 50), (17,), (16, 16, 16), (17, 17, 17), (5, 1, 9), (31, 2, 2)],
    )
    def test_cusz_hi_awkward_shapes(self, shape, rng):
        data = rng.standard_normal(shape).astype(np.float32)
        blob = repro.compress(data, 1e-2)
        out = repro.decompress(blob)
        assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    def test_float64_through_all_codecs(self, rng):
        data = np.cumsum(rng.standard_normal((14, 15, 16)), axis=1)
        for codec in ALL_FIXED_EB:
            blob = repro.compress(data, 1e-3, codec=codec)
            out = repro.decompress(blob)
            assert out.dtype == np.float64
            assert np.abs(data - out).max() <= blob.error_bound


class TestPaperHeadlines:
    """The abstract's claims, asserted end to end on one shared workload."""

    @pytest.fixture(scope="class")
    def field(self):
        return repro.datasets.load("nyx", shape=(64, 64, 64))

    def test_up_to_249pct_improvement_regime_exists(self, field):
        """At large bounds cuSZ-Hi improves >100% over the best open baseline
        (the paper's 'up to 249% over existing compressors' regime)."""
        hi = repro.compress(field, 1e-2).compression_ratio
        best_base = max(
            repro.compress(field, 1e-2, codec=c).compression_ratio
            for c in ("cusz-l", "cusz-i", "cuszp2", "fzgpu")
        )
        assert hi > 2.0 * best_base

    def test_same_psnr_better_ratio(self, field):
        """At matched PSNR, cuSZ-Hi's bitrate beats cuSZ-IB's (rate-distortion
        dominance, paper §6.2.2)."""
        from repro.analysis import rd_curve

        hi = rd_curve("cusz-hi-cr", field, ebs=(1e-2, 3e-3, 1e-3))
        ib = rd_curve("cusz-ib", field, ebs=(1e-2, 3e-3, 1e-3))
        # Compare bitrate needed for the PSNR cuSZ-IB reaches at eb=3e-3.
        target_psnr = ib.points[1].psnr
        hi_rates = hi.bitrates()
        hi_psnrs = hi.psnrs()
        order = np.argsort(hi_psnrs)
        hi_rate_at_target = float(np.interp(target_psnr, hi_psnrs[order], hi_rates[order]))
        assert hi_rate_at_target < ib.points[1].bitrate

    def test_error_bound_is_hard_guarantee(self, field):
        """Eq. 1 holds for every mode at every tested bound — not on average."""
        for mode in ("cr", "tp"):
            for eb in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5):
                blob = repro.compress(field, eb, mode=mode)
                out = repro.decompress(blob)
                assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound
