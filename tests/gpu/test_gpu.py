"""Simulated GPU substrate: device specs, kernel records, roofline model."""

import pytest

from repro.encoders.pipelines import StageTrace
from repro.gpu.costmodel import (
    kernel_time_s,
    pipeline_kernels,
    throughput_gibs,
    trace_time_s,
)
from repro.gpu.device import A100_SXM_80GB, DEVICES, RTX_6000_ADA
from repro.gpu.kernel import EFFICIENCY, KernelRecord, KernelTrace


class TestDevices:
    def test_paper_table2_values(self):
        assert A100_SXM_80GB.mem_bw_gbs == 2039.0
        assert A100_SXM_80GB.fp32_tflops == 19.5
        assert RTX_6000_ADA.mem_bw_gbs == 960.0
        assert RTX_6000_ADA.fp32_tflops == 91.06
        assert set(DEVICES) == {"a100", "rtx6000ada"}


class TestKernelRecord:
    def test_bytes_moved(self):
        r = KernelRecord("k", 100, 50)
        assert r.bytes_moved == 150

    def test_efficiency_class_validated(self):
        with pytest.raises(ValueError):
            KernelRecord("k", 1, 1, efficiency_class="warp-speed")

    def test_trace_accumulates(self):
        t = KernelTrace()
        t.launch("a", 10, 5)
        t.launch("b", 20, 10, flops=100, efficiency_class="gather")
        assert len(t) == 2 and t.total_bytes == 45


class TestRoofline:
    def test_memory_bound_kernel(self):
        # 2 GiB moved on A100 streaming: ~2e9/(2039e9*0.85) seconds.
        r = KernelRecord("k", 2 * 10**9, 0)
        t = kernel_time_s(r, A100_SXM_80GB)
        expect = 4e-6 + 2e9 / (2039e9 * EFFICIENCY["streaming"])
        assert t == pytest.approx(expect)

    def test_compute_bound_kernel(self):
        # Huge flops on tiny data: compute term dominates.
        r = KernelRecord("k", 8, 0, flops=10**12)
        assert kernel_time_s(r, A100_SXM_80GB) > 0.01

    def test_a100_faster_for_memory_bound(self):
        r = KernelRecord("k", 10**9, 10**9)
        assert kernel_time_s(r, A100_SXM_80GB) < kernel_time_s(r, RTX_6000_ADA)

    def test_throughput_helper(self):
        t = KernelTrace()
        t.launch("k", 2**30, 0)
        gibs = throughput_gibs(2**30, t, A100_SXM_80GB)
        assert 100 < gibs < 2000  # below peak BW, same order

    def test_launch_overhead_dominates_tiny_kernels(self):
        t = KernelTrace()
        for _ in range(1000):
            t.launch("k", 64, 64)
        assert trace_time_s(t, A100_SXM_80GB) > 1000 * 3e-6


class TestPipelineKernels:
    def _trace(self):
        st = StageTrace()
        st.record("HF", 1_000_000, 300_000)
        st.record("RRE4", 300_000, 150_000)
        return st

    def test_schedule_built(self):
        kt = pipeline_kernels(self._trace())
        assert len(kt) == 2
        assert kt.records[0].name == "enc:HF"
        assert kt.records[0].bytes_read == 6_000_000  # 6 passes over input

    def test_decode_swaps_direction(self):
        kt = pipeline_kernels(self._trace(), decode=True)
        assert kt.records[0].name == "dec:HF"
        # Huffman decode work is symbol-count driven: 4 passes of the 1 MB
        # decoded stream, written once.
        assert kt.records[0].bytes_read == 4 * 1_000_000
        assert kt.records[0].bytes_written == 1_000_000

    def test_unknown_stage_gets_default(self):
        st = StageTrace()
        st.record("MYSTAGE9", 1000, 500)
        kt = pipeline_kernels(st)
        assert kt.records[0].bytes_read == 2000


def test_fig10_throughput_ordering(smooth3d):
    """The paper's speed ranking: cuSZp2/FZ-GPU fastest, then cuSZ-Hi-TP,
    then Lorenzo/interp + Huffman compressors (Fig. 10)."""
    from repro.analysis.harness import run_case

    devices = (A100_SXM_80GB,)
    tps = {}
    for name in ("cusz-hi-cr", "cusz-hi-tp", "cusz-l", "cuszp2", "fzgpu"):
        # scale=1000: evaluate at paper-scale volume so launch overhead does
        # not flatten the ordering (the test field is tiny).
        r = run_case(name, smooth3d, 1e-3, devices=devices, scale=1000.0)
        tps[name] = r.comp_gibs[A100_SXM_80GB.name]
    assert tps["cuszp2"] > tps["cusz-hi-tp"]
    assert tps["fzgpu"] > tps["cusz-hi-tp"]
    assert tps["cusz-hi-tp"] > tps["cusz-hi-cr"]
