"""Analysis harnesses: case runner, rate-distortion, ablation, viz report."""

import numpy as np
import pytest

from repro.analysis import (
    ABLATION_STEPS,
    EVAL_ORDER,
    artifact_score,
    ascii_heatmap,
    format_table,
    make_compressor,
    rd_curve,
    rd_curve_zfp,
    run_ablation,
    run_case,
    run_fixed_rate_case,
    slice_report,
    take_slice,
)
from repro.datasets import load
from repro.gpu.device import A100_SXM_80GB


@pytest.fixture(scope="module")
def field():
    return load("miranda", shape=(32, 48, 48))


class TestHarness:
    def test_eval_order_complete(self):
        assert set(EVAL_ORDER) == {
            "cusz-hi-cr", "cusz-hi-tp", "cusz-l", "cusz-i", "cusz-ib", "cuszp2", "fzgpu"
        }

    def test_run_case_metrics(self, field):
        r = run_case("cusz-hi-cr", field, 1e-3, devices=(A100_SXM_80GB,))
        assert r.cr > 1
        assert r.max_err <= r.abs_eb
        assert r.psnr > 30
        assert A100_SXM_80GB.name in r.comp_gibs
        assert r.bitrate == pytest.approx(8 * r.blob_nbytes / field.size, rel=1e-6)

    def test_fixed_rate_case(self, field):
        r = run_fixed_rate_case(field, 8.0, devices=(A100_SXM_80GB,))
        assert r.compressor == "cuzfp"
        assert 3 < r.cr < 6

    def test_unknown_compressor(self, field):
        with pytest.raises(KeyError):
            make_compressor("gzip")


class TestRateDistortion:
    def test_monotone_psnr_vs_eb(self, field):
        curve = rd_curve("cusz-hi-tp", field, ebs=(1e-2, 1e-3, 1e-4))
        ps = curve.psnrs()
        assert ps[0] < ps[1] < ps[2]  # tighter bound -> higher PSNR
        br = curve.bitrates()
        assert br[0] < br[2]  # tighter bound -> more bits

    def test_zfp_curve(self, field):
        curve = rd_curve_zfp(field, rates=(4.0, 8.0, 16.0))
        assert curve.psnrs()[0] < curve.psnrs()[-1]

    def test_interp_query(self, field):
        curve = rd_curve("cusz-l", field, ebs=(1e-2, 1e-4))
        mid = curve.psnr_at_bitrate(float(np.mean(curve.bitrates())))
        assert min(curve.psnrs()) <= mid <= max(curve.psnrs())


class TestAblation:
    def test_steps_match_table5(self):
        labels = [l for l, _ in ABLATION_STEPS]
        assert labels == [
            "cusz-ib", "+partition/anchor", "+code reorder",
            "+md-interp/autotune", "cusz-hi-cr",
        ]

    def test_run_ablation(self, field):
        row = run_ablation("miranda", field, 1e-2)
        assert set(row.crs) == {l for l, _ in ABLATION_STEPS}
        cum = row.cumulative()
        assert cum["cusz-ib"] == 1.0
        # The full stack must end up ahead of the baseline (Table 5).
        assert cum["cusz-hi-cr"] > 1.0
        incs = row.increments()
        assert len(incs) == 4


class TestVisualization:
    def test_take_slice_shapes(self, field):
        assert take_slice(field).shape == (48, 48)
        assert take_slice(field, axis=2, index=5).shape == (32, 48)
        d4 = np.zeros((3, 4, 5, 6))
        assert take_slice(d4, axis=0).ndim == 2

    def test_artifact_score_range(self, field, rng):
        recon_smooth = field + 0.01
        recon_gritty = field + 0.01 * rng.standard_normal(field.shape).astype(np.float32)
        assert artifact_score(field, recon_smooth) < 0.1
        assert artifact_score(field, recon_gritty) > 0.5
        assert artifact_score(field, field) == 0.0

    def test_slice_report_keys(self, field):
        rep = slice_report(field, field + 1e-4)
        assert set(rep) == {"slice_psnr", "slice_ssim", "artifact_score"}

    def test_ascii_heatmap(self, smooth2d):
        art = ascii_heatmap(smooth2d, width=20, height=8)
        lines = art.splitlines()
        assert len(lines) == 8 and all(len(l) == 20 for l in lines)


def test_format_table():
    out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "---" in lines[2]
    assert len(lines) == 5
