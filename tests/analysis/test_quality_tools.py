"""Quality-targeted compression and the Z-checker report."""

import numpy as np
import pytest

from repro.analysis.target_quality import compress_to_psnr, compress_to_ratio
from repro.analysis.zchecker import format_report, full_report
from repro.datasets import load
from repro.metrics import psnr


@pytest.fixture(scope="module")
def field():
    return load("miranda", shape=(32, 48, 48))


class TestTargetPsnr:
    def test_meets_floor(self, field):
        res = compress_to_psnr(field, 55.0)
        assert res.psnr >= 55.0
        assert res.cr > 1.0

    def test_not_overly_conservative(self, field):
        """The search must not burn 10 dB more than requested."""
        res = compress_to_psnr(field, 55.0)
        assert res.psnr < 75.0

    def test_higher_target_costs_more(self, field):
        lo = compress_to_psnr(field, 45.0)
        hi = compress_to_psnr(field, 75.0)
        assert hi.psnr > lo.psnr
        assert hi.cr < lo.cr

    def test_other_compressors(self, field):
        res = compress_to_psnr(field, 50.0, compressor="cusz-l")
        assert res.psnr >= 50.0


class TestTargetRatio:
    def test_hits_target(self, field):
        res = compress_to_ratio(field, 30.0)
        assert abs(res.cr - 30.0) / 30.0 < 0.15

    def test_recon_consistent(self, field):
        res = compress_to_ratio(field, 20.0)
        assert psnr(field, res.recon) == pytest.approx(res.psnr)


class TestZchecker:
    def test_report_keys(self, field):
        recon = field + np.float32(1e-4)
        rep = full_report(field, recon, eb=1e-3)
        for key in (
            "max_abs_error", "rmse", "psnr", "pearson", "bound_utilization",
            "spectral_err_low", "spectral_err_high", "central_slice_ssim",
        ):
            assert key in rep

    def test_perfect_recon(self, field):
        rep = full_report(field, field.copy())
        assert rep["max_abs_error"] == 0.0
        assert rep["pearson"] == pytest.approx(1.0)
        assert rep["psnr"] == float("inf")

    def test_bound_utilization(self, field):
        from repro.core.compressor import CuszHi

        comp = CuszHi(mode="cr")
        blob = comp.compress(field, 1e-3)
        recon = comp.decompress(blob)
        rep = full_report(field, recon, eb=blob.error_bound)
        assert 0.5 < rep["bound_utilization"] <= 1.0
        assert 0.0 <= rep["frac_near_bound"] <= 1.0

    def test_shape_mismatch(self, field):
        with pytest.raises(ValueError):
            full_report(field, field[:-1])

    def test_spectral_errors_grow_with_eb(self, field):
        from repro.core.compressor import CuszHi

        reps = []
        for eb in (1e-4, 1e-2):
            comp = CuszHi(mode="cr")
            recon = comp.decompress(comp.compress(field, eb))
            reps.append(full_report(field, recon))
        assert reps[1]["spectral_err_high"] >= reps[0]["spectral_err_high"]

    def test_format_report(self, field):
        rep = full_report(field, field + np.float32(1e-5))
        text = format_report(rep)
        assert "psnr" in text and "max_abs_error" in text
