"""Crash-window recovery, replicas, and ArchiveStore.repair self-healing.

Companion to test_archive.py: these tests attack the archive with the
:mod:`repro.faults` hooks (torn footer/index writes at every byte boundary)
and with raw file surgery (bit rot of primaries and replicas), then assert
the two robustness contracts:

* a crash at *any* byte of a commit leaves the previously committed state
  readable and ``verify(deep=True)``-clean (dual-slot footer);
* ``repair()`` restores rotted primaries from ``copies=N`` replicas and
  quarantines — never silently serves — entries with no surviving copy.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import compress
from repro.faults import FaultInjected, FaultPlan, FaultSpec, ReproFaults
from repro.service import ArchiveCorruption, ArchiveError, ArchiveStore
from repro.service.archive import _SLOT_LEN, REPAIR_SCHEMA

_BLOBS: dict = {}


def _blob(tag: int):
    """A real (deep-verifiable) tiny frame; ``tag`` makes payloads distinct."""
    if tag not in _BLOBS:
        field = np.linspace(tag, tag + 1, 8**3, dtype=np.float32).reshape(8, 8, 8)
        _BLOBS[tag] = compress(field, eb=1e-3)
    return _BLOBS[tag]


def _seed_archive(path: str, names=("alpha", "beta"), **add_kw) -> None:
    with ArchiveStore(path, mode="w") as arch:
        for i, name in enumerate(names):
            arch.add_blob(name, _blob(i + 1), **add_kw)


class TestTornFooter:
    """Satellite: torn footer-slot write at every byte boundary + reopen/resume."""

    @pytest.mark.parametrize("boundary", range(_SLOT_LEN + 1))
    def test_torn_footer_write_at_every_boundary(self, tmp_path, boundary):
        path = str(tmp_path / "torn.rpza")
        _seed_archive(path)
        plan = FaultPlan(
            [FaultSpec("archive.footer-write", "torn-write", at=1, byte=boundary)]
        )
        with ReproFaults(plan, env=False):
            arch = ArchiveStore(path, mode="a")
            with pytest.raises(FaultInjected, match="torn write"):
                arch.add_blob("gamma", _blob(3))
            arch.close()
        # Reopen: the archive must come back clean no matter where the tear
        # landed.  The commit point is the last byte of the slot CRC: torn
        # before it, the slot fails its CRC and the prior commit (2 entries)
        # stays live; torn after it, the slot is already valid (the trailing
        # magic survives from this slot's previous occupant) and the third
        # entry — whose index block was fully written — is durable.
        commit_point = _SLOT_LEN - len(b"RPZAIDX2")  # body + slot CRC
        with ArchiveStore(path) as arch:
            assert arch.verify(deep=True) == []
            expected = {"alpha", "beta"} | ({"gamma"} if boundary >= commit_point else set())
            assert set(arch.names()) == expected
        # Resume: the interrupted add can simply be retried.
        with ArchiveStore(path, mode="a") as arch:
            if "gamma" not in arch:
                arch.add_blob("gamma", _blob(3))
        with ArchiveStore(path) as arch:
            assert set(arch.names()) == {"alpha", "beta", "gamma"}
            assert arch.verify(deep=True) == []

    def test_torn_index_write_keeps_prior_commit(self, tmp_path):
        path = str(tmp_path / "tornidx.rpza")
        _seed_archive(path)
        plan = FaultPlan([FaultSpec("archive.index-write", "torn-write", at=1, byte=7)])
        with ReproFaults(plan, env=False):
            arch = ArchiveStore(path, mode="a")
            with pytest.raises(FaultInjected):
                arch.add_blob("gamma", _blob(3))
            arch.close()
        with ArchiveStore(path) as arch:
            # The footer slot for the new index was never written, so the old
            # slot — pointing at the untouched old index block — still wins.
            assert set(arch.names()) == {"alpha", "beta"}
            assert arch.verify(deep=True) == []

    def test_lost_footer_flush_keeps_prior_commit(self, tmp_path):
        path = str(tmp_path / "lost.rpza")
        _seed_archive(path)
        plan = FaultPlan([FaultSpec("archive.footer-write", "lost-flush", at=1)])
        with ReproFaults(plan, env=False):
            with ArchiveStore(path, mode="a") as arch:
                arch.add_blob("gamma", _blob(3))  # "succeeds", footer never lands
        with ArchiveStore(path) as arch:
            assert set(arch.names()) == {"alpha", "beta"}
            assert arch.verify(deep=True) == []

    def test_sigkill_mid_append_leaves_archive_clean(self, tmp_path):
        """Real process death: SIGKILL a writer mid-append-loop, then reopen.

        Unlike the byte-boundary sweep this is not deterministic about
        *where* the writer dies — that is the point: whatever instant the
        kill lands, the archive must reopen clean with a prefix of the
        appended entries.
        """
        path = str(tmp_path / "killed.rpza")
        _seed_archive(path)
        code = (
            "import sys\n"
            "from repro.service import ArchiveStore\n"
            "from tests.service.test_archive_repair import _blob\n"
            f"with ArchiveStore({path!r}, mode='a') as arch:\n"
            "    print('READY', flush=True)\n"
            "    for i in range(5000):\n"
            "        arch.add_blob(f'e{i}', _blob(1))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"), os.getcwd(), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code], env=env, stdout=subprocess.PIPE, text=True
        )
        assert proc.stdout is not None and proc.stdout.readline().startswith("READY")
        time.sleep(0.25)  # let some appends land
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        with ArchiveStore(path) as arch:
            names = set(arch.names())
            assert {"alpha", "beta"} <= names
            appended = sorted(int(n[1:]) for n in names - {"alpha", "beta"})
            assert appended == list(range(len(appended)))  # gapless prefix
            assert arch.verify(deep=True) == []


class TestReplicasAndRepair:
    def _rot_primary(self, path: str, name: str) -> None:
        with ArchiveStore(path) as arch:
            e = arch.entry(name)
            off, nbytes = e.offset, e.nbytes
        with open(path, "r+b") as fh:
            fh.seek(off + nbytes // 2)
            byte = fh.read(1)[0]
            fh.seek(off + nbytes // 2)
            fh.write(bytes([byte ^ 0xFF]))

    def test_copies_recorded_and_roundtrip_index(self, tmp_path):
        path = str(tmp_path / "rep.rpza")
        _seed_archive(path, copies=3)
        with ArchiveStore(path) as arch:
            e = arch.entry("alpha")
            assert len(e.replicas) == 2
            assert all(isinstance(r, int) for r in e.replicas)
            assert arch.verify(deep=True) == []

    def test_copies_validation(self, tmp_path):
        with ArchiveStore(str(tmp_path / "v.rpza"), mode="w") as arch:
            with pytest.raises(ArchiveError, match="copies must be >= 1"):
                arch.add_blob("x", _blob(1), copies=0)

    def test_repair_restores_primary_from_replica(self, tmp_path):
        path = str(tmp_path / "heal.rpza")
        _seed_archive(path, copies=2)
        self._rot_primary(path, "alpha")
        with ArchiveStore(path) as arch:  # sanity: the rot is detected
            with pytest.raises(ArchiveCorruption):
                arch.get_blob("alpha")
        report = ArchiveStore.repair(path)
        assert report["schema"] == REPAIR_SCHEMA
        assert report["restored"] == ["alpha"]
        assert report["ok"] == ["beta"]
        assert report["quarantined"] == []
        with ArchiveStore(path) as arch:
            assert arch.verify(deep=True) == []
            assert arch.read_bytes("alpha") == _blob(1).to_bytes()  # byte-identical

    def test_repair_quarantines_unrecoverable_entry(self, tmp_path):
        path = str(tmp_path / "lost.rpza")
        _seed_archive(path, copies=1)  # no replicas: rot is fatal for the entry
        self._rot_primary(path, "alpha")
        report = ArchiveStore.repair(path)
        assert report["quarantined"] == ["alpha"]
        assert report["ok"] == ["beta"]
        qdir = report["quarantine_dir"]
        assert qdir and os.path.isdir(qdir)
        note = json.load(open(os.path.join(qdir, "alpha.json")))
        assert note["entry"] == "alpha" and note["reason"]
        # The damaged entry is gone from the healed archive, not half-readable.
        with ArchiveStore(path) as arch:
            assert set(arch.names()) == {"beta"}
            assert arch.verify(deep=True) == []

    def test_repair_rebuilds_index_when_both_slots_destroyed(self, tmp_path):
        path = str(tmp_path / "slots.rpza")
        _seed_archive(path)
        with open(path, "r+b") as fh:  # zero both footer slots
            fh.seek(len(b"RPZARCH2"))
            fh.write(b"\0" * (2 * _SLOT_LEN))
        with pytest.raises(ArchiveCorruption, match="footer slots"):
            ArchiveStore(path)
        report = ArchiveStore.repair(path)
        assert report["index_recovered"] is True
        assert sorted(report["ok"]) == ["alpha", "beta"]
        with ArchiveStore(path) as arch:
            assert set(arch.names()) == {"alpha", "beta"}
            assert arch.verify(deep=True) == []

    def test_repair_dir_backend_restores_from_copy(self, tmp_path):
        path = str(tmp_path / "arch_dir")
        with ArchiveStore(path, mode="w", backend="dir") as arch:
            arch.add_blob("alpha", _blob(1), copies=2)
        with ArchiveStore(path, backend="dir") as arch:
            e = arch.entry("alpha")
            assert e.replicas and all(isinstance(r, str) for r in e.replicas)
            victim = os.path.join(path, e.filename)
        # Rot a byte near the end of the file — inside a CRC-protected
        # segment payload (the uncrc'd fixed header would not be detected).
        with open(victim, "r+b") as fh:
            fh.seek(os.path.getsize(victim) - 10)
            byte = fh.read(1)[0]
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte ^ 0xFF]))
        report = ArchiveStore.repair(path)
        assert report["restored"] == ["alpha"]
        with ArchiveStore(path, backend="dir") as arch:
            assert arch.verify(deep=True) == []
            assert arch.read_bytes("alpha") == _blob(1).to_bytes()  # byte-identical

    def test_repair_missing_archive_is_typed_error(self, tmp_path):
        with pytest.raises(ArchiveError, match="does not exist"):
            ArchiveStore.repair(str(tmp_path / "nope.rpza"))
