"""Manifest parsing and validation (repro.service.manifest)."""

import json

import pytest

from repro.service import ManifestError, load_manifest, parse_manifest

try:
    import tomllib  # noqa: F401

    HAVE_TOML = True
except ImportError:  # pragma: no cover - py3.10 CI lane
    HAVE_TOML = False

TOML_MANIFEST = """
[job]
name = "corpus"
eb = 1e-3
mode = "cr"
executor = "threads"
workers = 2
tiles = [32, 32]

[[fields]]
name = "temp"
dataset = "cesm-atm"
shape = [64, 128]
seed = 3

[[fields]]
name = "rho"
path = "rho_24_24_24.f32"
eb = 1e-4
mode = "tp"

[[fields]]
name = "shots"
dataset = "rtm"
shape = [16, 16, 16]
timesteps = 3
temporal = true
"""


def _json_doc() -> dict:
    return {
        "job": {"name": "corpus", "eb": 1e-3},
        "fields": [
            {"name": "temp", "dataset": "cesm-atm", "shape": [64, 128]},
            {"name": "rho", "path": "rho_24_24_24.f32"},
        ],
    }


class TestParse:
    def test_json_manifest(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps(_json_doc()))
        spec = load_manifest(str(path))
        assert spec.name == "corpus"
        assert [f.name for f in spec.fields] == ["temp", "rho"]
        assert spec.fields[0].shape == (64, 128)
        assert spec.base_dir == str(tmp_path)
        assert spec.resolve_path(spec.fields[1]) == str(tmp_path / "rho_24_24_24.f32")

    @pytest.mark.skipif(not HAVE_TOML, reason="tomllib needs Python >= 3.11")
    def test_toml_manifest(self, tmp_path):
        path = tmp_path / "job.toml"
        path.write_text(TOML_MANIFEST)
        spec = load_manifest(str(path))
        assert spec.executor == "threads" and spec.workers == 2
        assert spec.tiles == (32, 32)
        rho = spec.fields[1]
        assert rho.eb == 1e-4 and rho.mode == "tp" and rho.path == "rho_24_24_24.f32"
        shots = spec.fields[2]
        assert shots.is_stream and shots.timesteps == 3 and shots.temporal

    def test_suffixless_falls_back(self, tmp_path):
        path = tmp_path / "manifest"
        path.write_text(json.dumps(_json_doc()))
        assert load_manifest(str(path)).name == "corpus"

    def test_defaults(self):
        spec = parse_manifest({"fields": [{"name": "x", "dataset": "nyx"}]})
        assert spec.eb == 1e-3 and spec.mode == "cr" and spec.executor == "serial"
        assert spec.fields[0].eb is None  # falls back to the job default at run time
        assert spec.fields[0].hot is False

    def test_hot_replication_hint(self):
        spec = parse_manifest(
            {
                "fields": [
                    {"name": "x", "dataset": "nyx", "hot": True},
                    {"name": "y", "dataset": "nyx"},
                ]
            }
        )
        assert [f.hot for f in spec.fields] == [True, False]

    def test_jobspec_roundtrips_through_doc(self, tmp_path):
        # The coordinator ships jobspec_to_doc(spec) over HTTP and workers
        # re-parse it; the round trip must preserve every knob, hot included.
        from repro.service import jobspec_to_doc

        path = tmp_path / "job.json"
        doc = _json_doc()
        doc["fields"][0]["hot"] = True
        doc["fields"][0]["eb"] = 1e-4
        path.write_text(json.dumps(doc))
        spec = load_manifest(str(path))
        respec = parse_manifest(jobspec_to_doc(spec), base_dir=spec.base_dir)
        assert jobspec_to_doc(respec) == jobspec_to_doc(spec)
        assert respec.base_dir == spec.base_dir
        assert respec.fields[0].hot and respec.fields[0].eb == 1e-4
        assert not respec.fields[1].hot


class TestValidation:
    def test_missing_file(self):
        with pytest.raises(ManifestError, match="cannot read manifest"):
            load_manifest("/nonexistent/path.toml")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(ManifestError, match="invalid JSON"):
            load_manifest(str(path))

    def test_no_fields(self):
        with pytest.raises(ManifestError, match="non-empty 'fields'"):
            parse_manifest({"job": {"name": "empty"}})

    def test_unknown_dataset(self):
        with pytest.raises(ManifestError, match="unknown dataset 'nope'"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nope"}]})

    def test_dataset_xor_path(self):
        with pytest.raises(ManifestError, match="exactly one of 'dataset' or 'path'"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "path": "x.f32"}]})
        with pytest.raises(ManifestError, match="exactly one of 'dataset' or 'path'"):
            parse_manifest({"fields": [{"name": "x"}]})

    def test_duplicate_names(self):
        doc = {"fields": [{"name": "x", "dataset": "nyx"}, {"name": "x", "dataset": "rtm"}]}
        with pytest.raises(ManifestError, match="duplicate field names"):
            parse_manifest(doc)

    def test_unknown_field_keys(self):
        with pytest.raises(ManifestError, match="unknown keys"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "wat": 1}]})

    def test_codec_with_tiles_rejected(self):
        doc = {"fields": [{"name": "x", "dataset": "nyx", "codec": "cusz-l", "tiles": [8]}]}
        with pytest.raises(ManifestError, match="tiles are only supported"):
            parse_manifest(doc)

    def test_stream_needs_dataset(self):
        doc = {"fields": [{"name": "x", "path": "x.f32", "timesteps": 4}]}
        with pytest.raises(ManifestError, match="need a 'dataset'"):
            parse_manifest(doc)

    def test_bad_job_values(self):
        with pytest.raises(ManifestError, match="job.eb"):
            parse_manifest({"job": {"eb": -1}, "fields": [{"name": "x", "dataset": "nyx"}]})
        with pytest.raises(ManifestError, match="job.executor"):
            parse_manifest(
                {"job": {"executor": "gpu"}, "fields": [{"name": "x", "dataset": "nyx"}]}
            )

    def test_bad_shape(self):
        with pytest.raises(ManifestError, match="shape"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "shape": [0, 4]}]})

    @pytest.mark.parametrize("tiles", [8, [0, 4], [], "8x8"])
    def test_bad_tiles_are_manifest_errors(self, tiles):
        """Regression: a scalar `tiles = 8` escaped as a raw TypeError."""
        with pytest.raises(ManifestError, match="tiles"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "tiles": tiles}]})
        with pytest.raises(ManifestError, match="tiles"):
            parse_manifest({"job": {"tiles": tiles}, "fields": [{"name": "x", "dataset": "nyx"}]})

    def test_unknown_codec_rejected_at_parse(self):
        with pytest.raises(ManifestError, match="field 'x'.*unknown codec 'gzip'"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "codec": "gzip"}]})

    def test_stream_with_non_streaming_codec_rejected_at_parse(self):
        """Regression: a cuzfp snapshot stream parsed cleanly and then died
        at run time with an opaque TypeError naming neither field nor codec."""
        doc = {"fields": [{"name": "x", "dataset": "nyx", "codec": "cuzfp", "timesteps": 3}]}
        with pytest.raises(ManifestError, match="field 'x'.*'cuzfp'.*snapshot streams"):
            parse_manifest(doc)
        # The same codec without streaming is still fine structurally.
        parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "codec": "cuzfp"}]})

    def test_field_mode_override_keeps_job_tiles(self):
        """A field switching engine mode must inherit the job-level tiling."""
        spec = parse_manifest(
            {
                "job": {"tiles": [16, 16, 16]},
                "fields": [{"name": "x", "dataset": "nyx", "mode": "tp"}],
            }
        )
        request = spec.fields[0].request(spec)
        assert request.codec == "cusz-hi-tp"
        assert request.tiling is not None and request.tiling.tiles == (16, 16, 16)

    def test_bad_seed(self):
        with pytest.raises(ManifestError, match="seed must be an integer"):
            parse_manifest({"fields": [{"name": "x", "dataset": "nyx", "seed": "abc"}]})

    def test_unknown_job_keys(self):
        doc = {"job": {"excutor": "processes"}, "fields": [{"name": "x", "dataset": "nyx"}]}
        with pytest.raises(ManifestError, match="job: unknown keys"):
            parse_manifest(doc)

    def test_unknown_root_keys(self):
        doc = {"jobs": {}, "fields": [{"name": "x", "dataset": "nyx"}]}
        with pytest.raises(ManifestError, match="unknown top-level keys"):
            parse_manifest(doc)
