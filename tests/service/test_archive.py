"""ArchiveStore backends: index round-trips, random access, verify, corruption."""

import struct

import numpy as np
import pytest

from repro import CuszHi, compress
from repro.core.streaming import StreamWriter
from repro.datasets import load
from repro.service import ArchiveError, ArchiveStore


@pytest.fixture(scope="module")
def fields():
    return {
        "nyx": load("nyx", shape=(20, 20, 20)),
        "miranda": load("miranda", shape=(16, 24, 24)),
    }


@pytest.fixture(params=["file", "dir"])
def store_path(request, tmp_path):
    if request.param == "dir":
        return str(tmp_path / "arch_dir"), "dir"
    return str(tmp_path / "arch.rpza"), "file"


class TestRoundTrip:
    def test_add_get_roundtrip(self, store_path, fields):
        path, backend = store_path
        comp = CuszHi(mode="cr")
        blobs = {name: comp.compress(data, 1e-3) for name, data in fields.items()}
        with ArchiveStore(path, mode="w", backend=backend) as arch:
            for name, blob in blobs.items():
                arch.add_blob(name, blob, meta={"origin": "test"})
            assert len(arch) == 2 and "nyx" in arch
        with ArchiveStore(path, backend=backend) as arch:
            assert sorted(arch.names()) == ["miranda", "nyx"]
            for name, data in fields.items():
                entry = arch.entry(name)
                assert entry.shape == data.shape
                assert entry.meta["origin"] == "test"
                recon = arch.get(name)
                assert recon.shape == data.shape
                assert np.abs(data.astype(np.float64) - recon).max() <= entry.eb_abs

    def test_append_mode_resumes_index(self, store_path, fields):
        path, backend = store_path
        with ArchiveStore(path, mode="a", backend=backend) as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
        with ArchiveStore(path, mode="a", backend=backend) as arch:
            assert "nyx" in arch
            arch.add_blob("miranda", CuszHi().compress(fields["miranda"], 1e-3))
        with ArchiveStore(path, backend=backend) as arch:
            assert len(arch) == 2
            assert arch.verify(deep=True) == []

    def test_duplicate_rejected(self, store_path, fields):
        path, backend = store_path
        with ArchiveStore(path, mode="w", backend=backend) as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
            with pytest.raises(ArchiveError, match="already exists"):
                arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))

    def test_replace_repoints_entry(self, store_path, fields):
        path, backend = store_path
        with ArchiveStore(path, mode="w", backend=backend) as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
            loose = arch.entry("nyx").eb_abs
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-4), replace=True)
            assert arch.entry("nyx").eb_abs < loose
            assert len(arch) == 1
        with ArchiveStore(path, backend=backend) as arch:
            assert arch.verify(deep=True) == []
            recon = arch.get("nyx")
            data = fields["nyx"]
            assert np.abs(data.astype(np.float64) - recon).max() <= arch.entry("nyx").eb_abs

    def test_read_only_guard(self, store_path, fields):
        path, backend = store_path
        with ArchiveStore(path, mode="w", backend=backend) as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
        with ArchiveStore(path, backend=backend) as arch:
            with pytest.raises(ArchiveError, match="read-only"):
                arch.add_blob("x", CuszHi().compress(fields["nyx"], 1e-3))


class TestTiledAndStream:
    def test_partial_tile_decode(self, tmp_path, fields):
        data = fields["miranda"]
        blob = compress(data, eb=1e-3, tile_shape=(8, 12, 12))
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="w") as arch:
            arch.add_blob("m", blob)
            origin, tile = arch.get_tile("m", 0)
            assert origin == (0, 0, 0) and tile.shape == (8, 12, 12)
            assert np.abs(data[:8, :12, :12].astype(np.float64) - tile).max() <= blob.error_bound

    def test_tile_on_untiled_entry_errors(self, tmp_path, fields):
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="w") as arch:
            arch.add_blob("m", CuszHi().compress(fields["miranda"], 1e-3))
            with pytest.raises(ArchiveError, match="not a tiled frame"):
                arch.get_tile("m", 0)

    def test_stream_entry_roundtrip(self, tmp_path):
        snaps = [load("cesm-atm", shape=(24, 32), seed=s) for s in range(3)]
        writer = StreamWriter(eb=1e-3, temporal=True)
        for s in snaps:
            writer.append(s)
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="w") as arch:
            arch.add_stream(
                "ens", writer.getvalue(), shape=(24, 32), dtype=np.float32,
                eb_abs=writer._abs_eb, timesteps=3,
            )
            stack = arch.get("ens")
            assert stack.shape == (3, 24, 32)
            for s, r in zip(snaps, stack):
                assert np.abs(s.astype(np.float64) - r).max() <= writer._abs_eb
            with pytest.raises(ArchiveError, match="stream entry"):
                arch.get_blob("ens")
            assert arch.verify(deep=True) == []


class TestCorruption:
    def test_missing_archive(self, tmp_path):
        with pytest.raises(ArchiveError, match="does not exist"):
            ArchiveStore(str(tmp_path / "missing.rpza"))

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.rpza"
        p.write_bytes(b"NOTANARCHIVE" + b"\0" * 64)
        with pytest.raises(ArchiveError, match="bad magic"):
            ArchiveStore(str(p))

    def test_truncated_footer(self, tmp_path, fields):
        p = str(tmp_path / "a.rpza")
        with ArchiveStore(p, mode="w") as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
        raw = open(p, "rb").read()
        open(p, "wb").write(raw[:-10])
        with pytest.raises(ArchiveError, match="footer|truncated"):
            ArchiveStore(p)

    def test_corrupt_index_json(self, tmp_path, fields):
        p = str(tmp_path / "a.rpza")
        with ArchiveStore(p, mode="w") as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
            idx_off = arch._index_off
        raw = bytearray(open(p, "rb").read())
        raw[idx_off + 2] ^= 0xFF  # flip a byte inside the index JSON
        open(p, "wb").write(bytes(raw))
        with pytest.raises(ArchiveError, match="CRC|corrupt"):
            ArchiveStore(p)

    def test_crash_window_keeps_prior_entries(self, tmp_path, fields):
        # Simulate dying mid-add: bytes appended after the live index but the
        # pointer slot never flipped.  The archive must reopen with every
        # previously completed entry intact.
        p = str(tmp_path / "a.rpza")
        with ArchiveStore(p, mode="w") as arch:
            arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
        with open(p, "ab") as fh:
            fh.write(b"\x7f" * 1234)  # in-flight frame, crash before index flip
        with ArchiveStore(p, mode="a") as arch:
            assert arch.names() == ["nyx"]
            assert arch.verify(deep=True) == []
            arch.add_blob("miranda", CuszHi().compress(fields["miranda"], 1e-3))
        with ArchiveStore(p) as arch:
            assert sorted(arch.names()) == ["miranda", "nyx"]
            assert arch.verify(deep=True) == []

    def test_corrupt_frame_detected_by_verify(self, tmp_path, fields):
        p = str(tmp_path / "a.rpza")
        with ArchiveStore(p, mode="w") as arch:
            entry = arch.add_blob("nyx", CuszHi().compress(fields["nyx"], 1e-3))
            offset = entry.offset
        raw = bytearray(open(p, "rb").read())
        raw[offset + 60] ^= 0xFF  # flip a payload byte inside the frame
        open(p, "wb").write(bytes(raw))
        with ArchiveStore(p) as arch:
            problems = arch.verify()
            assert problems and "nyx" in problems[0]

    def test_dir_backend_corrupt_index(self, tmp_path):
        d = tmp_path / "arch"
        d.mkdir()
        (d / "index.json").write_text("{ not json")
        with pytest.raises(ArchiveError, match="corrupt archive index"):
            ArchiveStore(str(d))

    def test_corrupt_stream_entry_is_archive_error(self, tmp_path):
        from repro.core.streaming import StreamWriter
        from repro.datasets import load

        writer = StreamWriter(eb=1e-3)
        writer.append(load("cesm-atm", shape=(16, 24)))
        p = str(tmp_path / "a.rpza")
        with ArchiveStore(p, mode="w") as arch:
            entry = arch.add_stream(
                "ens", writer.getvalue(), shape=(16, 24), dtype=np.float32,
                eb_abs=writer._abs_eb, timesteps=1,
            )
            offset = entry.offset
        raw = bytearray(open(p, "rb").read())
        raw[offset + 40] ^= 0xFF  # flip a byte inside the stream payload
        open(p, "wb").write(bytes(raw))
        with ArchiveStore(p) as arch:
            with pytest.raises(ArchiveError):
                arch.get("ens")
            assert arch.verify(deep=True)  # reported, not raised

    def test_index_footer_slot_is_fixed_width(self):
        # The crash-safe dual-slot commit protocol depends on this exact
        # width: seq/offset/len/index-CRC, the slot's own CRC, then magic.
        assert struct.calcsize("<QQQI") + struct.calcsize("<I") + len(b"RPZAIDX2") == 40
