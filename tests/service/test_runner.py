"""BatchRunner: scheduling, failure isolation, resume, report schema."""

import json

import numpy as np
import pytest

from repro.datasets import load, write_raw
from repro.gpu.costmodel import lpt_order
from repro.service import (
    REPORT_SCHEMA,
    ArchiveStore,
    BatchRunner,
    FieldSpec,
    JobSpec,
    parse_manifest,
)


def _spec(fields, tmp_path, **job):
    doc = {"job": {"name": "t", **job}, "fields": fields}
    return parse_manifest(doc, base_dir=str(tmp_path))


@pytest.fixture()
def corpus(tmp_path):
    return _spec(
        [
            {"name": "a", "dataset": "nyx", "shape": [20, 20, 20]},
            {"name": "b", "dataset": "miranda", "shape": [16, 24, 24], "tiles": [8, 12, 12]},
            {"name": "c", "dataset": "cesm-atm", "shape": [32, 48], "eb": 1e-4},
        ],
        tmp_path,
    )


class TestRun:
    def test_run_archives_all_fields(self, corpus, tmp_path):
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(corpus, arch).run()
            assert report.ok and report.counts == {"ok": 3, "skipped": 0, "failed": 0}
            for fspec in corpus.fields:
                data = load(fspec.dataset, shape=fspec.shape)
                entry = arch.entry(fspec.name)
                recon = arch.get(fspec.name)
                assert np.abs(data.astype(np.float64) - recon).max() <= entry.eb_abs

    def test_per_field_eb_override(self, corpus, tmp_path):
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            BatchRunner(corpus, arch).run()
            # c used eb=1e-4 (10x tighter than the job default)
            data = load("cesm-atm", shape=(32, 48))
            rng = float(data.max() - data.min())
            assert arch.entry("c").eb_abs == pytest.approx(1e-4 * rng)

    def test_codec_override(self, tmp_path):
        spec = _spec([{"name": "x", "dataset": "nyx", "shape": [16, 16, 16], "codec": "cusz-l"}],
                     tmp_path)
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(spec, arch).run()
            assert report.ok
            assert arch.entry("x").codec == "cusz-l"

    def test_failure_isolation(self, tmp_path):
        spec = _spec(
            [
                {"name": "good", "dataset": "nyx", "shape": [16, 16, 16]},
                {"name": "gone", "path": "missing.f32"},
            ],
            tmp_path,
        )
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(spec, arch).run()
            assert not report.ok
            by_name = {r.name: r for r in report.fields}
            assert by_name["good"].status == "ok"
            assert by_name["gone"].status == "failed"
            assert "FileNotFoundError" in by_name["gone"].error
            assert arch.names() == ["good"]

    def test_raw_path_field(self, tmp_path):
        data = load("miranda", shape=(12, 16, 16))
        write_raw(str(tmp_path / "rho_12_16_16.f32"), data)
        spec = _spec([{"name": "rho", "path": "rho_12_16_16.f32"}], tmp_path)
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(spec, arch).run()
            assert report.ok
            recon = arch.get("rho")
            assert np.abs(data.astype(np.float64) - recon).max() <= arch.entry("rho").eb_abs

    def test_stream_field(self, tmp_path):
        spec = _spec(
            [{"name": "ens", "dataset": "rtm", "shape": [12, 12, 12],
              "timesteps": 3, "temporal": True}],
            tmp_path,
        )
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(spec, arch).run()
            assert report.ok
            entry = arch.entry("ens")
            assert entry.kind == "stream" and entry.timesteps == 3
            stack = arch.get("ens")
            assert stack.shape == (3, 12, 12, 12)
            for t in range(3):
                orig = load("rtm", shape=(12, 12, 12), seed=t)
                assert np.abs(orig.astype(np.float64) - stack[t]).max() <= entry.eb_abs


class TestResume:
    def test_rerun_skips_completed(self, corpus, tmp_path):
        path = str(tmp_path / "a.rpza")
        with ArchiveStore(path, mode="a") as arch:
            first = BatchRunner(corpus, arch).run()
        with ArchiveStore(path, mode="a") as arch:
            second = BatchRunner(corpus, arch).run()
        assert first.counts["ok"] == 3
        assert second.counts == {"ok": 0, "skipped": 3, "failed": 0}
        assert second.wall_s < first.wall_s

    def test_no_resume_recompresses_and_replaces(self, corpus, tmp_path):
        path = str(tmp_path / "a.rpza")
        with ArchiveStore(path, mode="a") as arch:
            BatchRunner(corpus, arch).run()
        with ArchiveStore(path, mode="a") as arch:
            report = BatchRunner(corpus, arch, resume=False).run()
            assert report.counts == {"ok": 3, "skipped": 0, "failed": 0}
            assert len(arch) == 3  # replaced, not duplicated
            assert arch.verify(deep=True) == []


class TestSchedulingAndReport:
    def test_lpt_order_properties(self):
        order, makespan = lpt_order([1.0, 5.0, 3.0, 2.0], workers=2)
        assert order == [1, 2, 3, 0]  # largest first
        assert makespan == pytest.approx(6.0)  # {5,1} vs {3,2}
        assert lpt_order([], 4) == ([], 0.0)
        # one worker: makespan is the serial sum
        assert lpt_order([2.0, 2.0], 1)[1] == pytest.approx(4.0)

    def test_executors_agree(self, corpus, tmp_path):
        results = {}
        for executor in ("serial", "threads"):
            path = str(tmp_path / f"{executor}.rpza")
            with ArchiveStore(path, mode="a") as arch:
                report = BatchRunner(corpus, arch, executor=executor, workers=2).run()
                assert report.ok
                results[executor] = {n: arch.entry(n).nbytes for n in arch.names()}
        assert results["serial"] == results["threads"]

    def test_report_json_schema(self, corpus, tmp_path):
        with ArchiveStore(str(tmp_path / "a.rpza"), mode="a") as arch:
            report = BatchRunner(corpus, arch).run()
        out = tmp_path / "report.json"
        report.write(str(out))
        doc = json.loads(out.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["totals"]["fields"] == 3 and doc["totals"]["ok"] == 3
        assert doc["scheduler"]["policy"] == "lpt"
        assert doc["scheduler"]["modeled_makespan_elements"] > 0
        row = doc["fields"][0]
        for key in ("name", "status", "codec", "cr", "bitrate", "psnr", "max_err", "wall_s"):
            assert key in row
        # rows come back in manifest order regardless of LPT submission order
        assert [r["name"] for r in doc["fields"]] == ["a", "b", "c"]

    def test_runner_accepts_path(self, corpus, tmp_path):
        runner = BatchRunner(corpus, str(tmp_path / "a.rpza"))
        report = runner.run()
        runner.archive.close()
        assert report.ok

    def test_field_spec_is_picklable(self):
        import pickle

        spec = FieldSpec(name="x", dataset="nyx", shape=(8, 8), tiles=(4, 4))
        assert pickle.loads(pickle.dumps(spec)) == spec
        job = JobSpec(name="j", fields=(spec,))
        assert pickle.loads(pickle.dumps(job)) == job
