"""repro.bench: schema, determinism, regression diffing, CLI wiring."""

import json

import numpy as np
import pytest

from repro import bench
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_report():
    """One real smoke run shared by the module (seconds, not minutes)."""
    return bench.run_pipeline_bench(smoke=True, label="test", repeats=1)


class TestWorkloads:
    def test_generators_are_deterministic(self):
        for name, _, _ in bench.WORKLOADS:
            a = bench.generate_field(name, smoke=True)
            b = bench.generate_field(name, smoke=True)
            assert a.dtype == np.float32 and a.flags.c_contiguous
            np.testing.assert_array_equal(a, b)

    def test_dimensionalities_cover_1d_2d_3d(self):
        dims = sorted(len(s) for _, s, _ in bench.WORKLOADS)
        assert dims == [1, 2, 3]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown bench workload"):
            bench.generate_field("nope")


class TestReportSchema:
    def test_schema_and_matrix(self, smoke_report):
        assert smoke_report["schema"] == bench.SCHEMA
        assert smoke_report["smoke"] is True
        assert len(smoke_report["cases"]) == len(bench.WORKLOADS) * len(bench.ERROR_BOUNDS)
        for case in smoke_report["cases"]:
            assert set(case["stages"]) == {"compress", "serialize", "deserialize", "decompress"}
            for stage in case["stages"].values():
                assert stage["wall_s"] >= 0
            assert len(case["blob_sha256"]) == 64
            assert case["max_abs_err"] >= 0
            assert case["cr"] > 1

    def test_write_and_load_round_trip(self, smoke_report, tmp_path):
        path = tmp_path / "r.json"
        bench.write_report(smoke_report, str(path))
        assert bench.load_report(str(path))["cases"] == smoke_report["cases"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="not a repro.bench-pipeline/1"):
            bench.load_report(str(path))

    def test_format_report_lists_every_case(self, smoke_report):
        text = bench.format_report(smoke_report)
        for name, _, _ in bench.WORKLOADS:
            assert name in text


class TestDiff:
    def _tweak(self, report, factor, stage="compress"):
        doc = json.loads(json.dumps(report))  # deep copy
        for case in doc["cases"]:
            case["stages"][stage]["wall_s"] = round(
                case["stages"][stage]["wall_s"] * factor + 1e-6, 6
            )
        return doc

    def test_no_regression_within_threshold(self, smoke_report):
        result = bench.diff_reports(smoke_report, smoke_report, threshold=0.25)
        assert result["regressions"] == []
        assert result["digest_changes"] == []

    def test_regression_detected_beyond_threshold(self, smoke_report):
        slower = self._tweak(smoke_report, 10.0)
        result = bench.diff_reports(smoke_report, slower, threshold=0.25, min_wall=0.0)
        assert len(result["regressions"]) == len(smoke_report["cases"])

    def test_improvement_reported(self, smoke_report):
        faster = self._tweak(smoke_report, 0.05)
        result = bench.diff_reports(smoke_report, faster, threshold=0.25, min_wall=0.0)
        assert result["regressions"] == []
        assert result["improvements"]

    def test_min_wall_floor_skips_scheduler_noise(self, smoke_report):
        slower = self._tweak(smoke_report, 10.0)
        result = bench.diff_reports(smoke_report, slower, threshold=0.25, min_wall=1e9)
        assert result["regressions"] == []  # every stage below the floor

    def test_digest_change_flagged_separately(self, smoke_report):
        changed = json.loads(json.dumps(smoke_report))
        changed["cases"][0]["blob_sha256"] = "0" * 64
        result = bench.diff_reports(smoke_report, changed, threshold=0.25)
        assert len(result["digest_changes"]) == 1
        assert result["regressions"] == []

    def test_missing_baseline_case_reported(self, smoke_report):
        trimmed = json.loads(json.dumps(smoke_report))
        trimmed["cases"] = trimmed["cases"][1:]
        result = bench.diff_reports(trimmed, smoke_report, threshold=0.25)
        assert len(result["missing"]) == 1

    def test_negative_threshold_rejected(self, smoke_report):
        with pytest.raises(ValueError):
            bench.diff_reports(smoke_report, smoke_report, threshold=-0.1)


class TestCli:
    def test_bench_diff_exit_codes(self, smoke_report, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        bench.write_report(smoke_report, str(old))
        slower = TestDiff()._tweak(smoke_report, 10.0)
        bench.write_report(slower, str(new))
        assert main(["bench", "--diff", str(old), str(old)]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert main(["bench", "--diff", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_bench_diff_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["bench", "--diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_smoke_writes_report(self, tmp_path, capsys, monkeypatch):
        # Shrink the matrix so the CLI path stays fast: one 1-D case.
        monkeypatch.setattr(bench, "WORKLOADS", (bench.WORKLOADS[0],))
        monkeypatch.setattr(bench, "ERROR_BOUNDS", (1e-3,))
        out = tmp_path / "BENCH_pipeline.json"
        rc = main(["bench", "--smoke", "-o", str(out), "--repeats", "1", "--label", "ci"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == bench.SCHEMA
        assert doc["label"] == "ci"
        assert "wrote" in capsys.readouterr().out
