"""Evaluation metrics."""

import numpy as np
import pytest

from repro.metrics import (
    bitrate,
    bitrate_to_cr,
    compression_ratio,
    cr_to_bitrate,
    max_abs_error,
    nrmse,
    psnr,
    rmse,
    ssim2d,
    value_range,
    verify_error_bound,
)


class TestErrorMetrics:
    def test_identical_arrays(self):
        a = np.random.default_rng(0).random((10, 10))
        assert max_abs_error(a, a) == 0.0
        assert rmse(a, a) == 0.0
        assert psnr(a, a) == float("inf")
        assert verify_error_bound(a, a, 0.0)

    def test_known_psnr(self):
        a = np.zeros(100)
        a[0] = 1.0  # range = 1
        b = a + 0.01  # rmse = 0.01
        assert psnr(a, b) == pytest.approx(40.0, abs=1e-6)

    def test_nrmse(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10)

    def test_value_range_ignores_nonfinite(self):
        a = np.array([1.0, 5.0, np.inf, np.nan])
        assert value_range(a) == 4.0

    def test_verify_bound(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.05, 1.95])
        assert verify_error_bound(a, b, 0.05 + 1e-12)
        assert not verify_error_bound(a, b, 0.01)


class TestRatioMetrics:
    def test_cr(self):
        assert compression_ratio(1000, 100) == 10.0
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_bitrate(self):
        assert bitrate(100, 50) == 4.0

    def test_rate_cr_duality(self):
        # Paper: bitrate = 32 / CR for float32.
        assert bitrate_to_cr(4.0) == 8.0
        assert cr_to_bitrate(8.0) == 4.0
        assert bitrate_to_cr(cr_to_bitrate(13.7)) == pytest.approx(13.7)


class TestSsim:
    def test_identical(self, smooth2d):
        assert ssim2d(smooth2d, smooth2d) == pytest.approx(1.0)

    def test_noise_lowers_ssim(self, smooth2d, rng):
        noisy = smooth2d + 0.2 * rng.standard_normal(smooth2d.shape).astype(np.float32)
        s = ssim2d(smooth2d, noisy)
        assert 0.0 < s < 0.95

    def test_more_noise_lower_score(self, smooth2d, rng):
        n1 = smooth2d + 0.05 * rng.standard_normal(smooth2d.shape).astype(np.float32)
        n2 = smooth2d + 0.5 * rng.standard_normal(smooth2d.shape).astype(np.float32)
        assert ssim2d(smooth2d, n1) > ssim2d(smooth2d, n2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ssim2d(np.zeros((4, 4)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            ssim2d(np.zeros(4), np.zeros(4))

    def test_constant_fields(self):
        a = np.full((16, 16), 3.0)
        assert ssim2d(a, a.copy()) == 1.0
