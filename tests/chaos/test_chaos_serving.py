"""Serving chaos: worker death, socket resets, and corrupt reads over HTTP.

The contract: the server answers every fault with a *typed* retryable
status (503 + ``Retry-After``, never a bare 500), surfaces the damage in
``/healthz``/``/stats``, and :class:`repro.client.AsyncReproClient` rides
the retries to a correct final answer once the fault clears.
"""

import os

import numpy as np
import pytest

from repro import compress, faults
from repro.client import AsyncReproClient, RetryPolicy
from repro.faults import FaultPlan, FaultSpec, ReproFaults
from repro.service import ArchiveStore

#: retry fast in tests: ignore the server's 1 s Retry-After hint.
_FAST = dict(base_s=0.02, cap_s=0.2, retry_after_cap_s=0.05)


def _client(server, seed, **kw) -> AsyncReproClient:
    policy = RetryPolicy(**{**_FAST, **kw})
    return AsyncReproClient(server.host, server.port, policy=policy, seed=seed)


class TestWorkerDeath:
    def test_sigkilled_worker_is_typed_503_then_client_converges(
        self, serve, field16, chaos_seed, chaos_plan
    ):
        """A worker SIGKILLed mid-task must yield 503 (never 500, never a
        hang); after the plan is disarmed the retrying client gets a 200."""
        plan = chaos_plan(
            FaultPlan([FaultSpec("pool.worker-task", "kill", at=1)], seed=chaos_seed)
        )
        body = field16.tobytes()
        target = "/compress?shape=16,16,16&eb=1e-3"
        statuses = []

        async def scenario(server):
            # Attempt 1 hits the armed worker: it dies mid-task.  The pool
            # maps the death to a typed 503 and respawns.
            probe = _client(server, chaos_seed, max_attempts=1)
            first = await probe.post(target, body)
            statuses.append(first.status)
            assert first.status == 503
            assert b"died" in first.body and first.headers.get("retry-after")
            # Disarm: respawned workers from here on are clean.  Workers
            # already spawned under the armed env may each kill once more,
            # so give the client headroom to ride the respawn chain.
            faults.disarm()
            os.environ.pop(faults.ENV_VAR, None)
            retrying = _client(server, chaos_seed, max_attempts=8)
            resp = await retrying.post(target, body)
            statuses.append(resp.status)
            assert resp.status == 200
            # End to end: the surviving blob decompresses within the bound.
            back = await retrying.post("/decompress", resp.body)
            statuses.append(back.status)
            recon = np.frombuffer(back.body, dtype=np.float32).reshape(16, 16, 16)
            eb_abs = float(resp.headers["x-repro-eb-abs"])
            assert np.abs(field16 - recon).max() <= eb_abs
            stats = (await retrying.get("/stats")).json()
            assert stats["integrity"]["worker_death"] >= 1
            return stats

        with ReproFaults(plan):  # env armed -> spawned workers inherit it
            serve(scenario, worker_procs=2)  # >1 engages the process pool
        assert 500 not in statuses


class TestClientTransport:
    def test_injected_conn_reset_is_retried_transparently(
        self, serve, chaos_seed, chaos_plan
    ):
        plan = chaos_plan(
            FaultPlan([FaultSpec("client.request", "conn-reset", at=1)], seed=chaos_seed)
        )

        async def scenario(server):
            client = _client(server, chaos_seed, max_attempts=4)
            with ReproFaults(plan, env=False):
                resp = await client.get("/healthz")
            assert resp.status == 200
            assert client.stats["retries"] == 1 and client.stats["gave_up"] == 0

        serve(scenario)


class TestCorruptReads:
    def test_corrupt_archive_read_is_503_and_degrades_health(
        self, serve, tmp_path, field16, chaos_seed, chaos_plan
    ):
        """Bit rot seen while serving an archived field: typed 503 with
        Retry-After (a replica/repair may fix it), sticky ``degraded`` flag,
        ``integrity.corruption`` counter — and a clean read once the fault
        window passes.  Never a 500, never wrong bytes."""
        with ArchiveStore(str(tmp_path / "corpus.rpza"), mode="w") as arch:
            arch.add_blob("plain", compress(field16, eb=1e-3))
            eb_abs = arch.entry("plain").eb_abs  # eb=1e-3 is range-relative
        plan = chaos_plan(
            FaultPlan([FaultSpec("archive.read", "bit-flip", at=1)], seed=chaos_seed)
        )
        statuses = []

        async def scenario(server):
            assert (await _client(server, chaos_seed).get("/healthz")).json()[
                "degraded"
            ] is False
            probe = _client(server, chaos_seed, max_attempts=1)
            with ReproFaults(plan, env=False):
                resp = await probe.get("/archives/corpus/fields/plain")
                statuses.append(resp.status)
                assert resp.status == 503
                assert resp.headers.get("retry-after")
            client = _client(server, chaos_seed)
            health = (await client.get("/healthz")).json()
            assert health["degraded"] is True  # sticky until an operator looks
            stats = (await client.get("/stats")).json()
            assert stats["integrity"]["corruption"] >= 1
            # The rot was transient (injected on the read path): the retry
            # reads clean bytes and decodes within the bound.
            resp = await client.get("/archives/corpus/fields/plain")
            statuses.append(resp.status)
            assert resp.status == 200
            shape = tuple(int(d) for d in resp.headers["x-repro-shape"].split(","))
            recon = np.frombuffer(resp.body, dtype=np.float32).reshape(shape)
            assert np.abs(field16 - recon).max() <= eb_abs

        serve(scenario, archive_root=str(tmp_path))
        assert 500 not in statuses

    @pytest.mark.parametrize("kind", ["bit-flip", "short-read"])
    def test_pooled_corrupt_read_is_typed_503(
        self, serve, tmp_path, field16, chaos_seed, chaos_plan, kind
    ):
        """Same contract through the worker pool: corruption inside a worker
        crosses the process boundary as a typed 503, not a 500."""
        with ArchiveStore(str(tmp_path / "corpus.rpza"), mode="w") as arch:
            arch.add_blob("plain", compress(field16, eb=1e-3))
        plan = chaos_plan(
            FaultPlan([FaultSpec("archive.read", kind, at=1)], seed=chaos_seed)
        )
        statuses = []

        async def scenario(server):
            probe = _client(server, chaos_seed, max_attempts=1)
            resp = await probe.get("/archives/corpus/fields/plain")
            statuses.append(resp.status)
            assert resp.status == 503
            faults.disarm()
            os.environ.pop(faults.ENV_VAR, None)
            client = _client(server, chaos_seed, max_attempts=6)
            resp = await client.get("/archives/corpus/fields/plain")
            statuses.append(resp.status)
            assert resp.status == 200
            stats = (await client.get("/stats")).json()
            assert stats["integrity"]["corruption"] >= 1

        with ReproFaults(plan):  # workers arm from the environment
            serve(scenario, archive_root=str(tmp_path), worker_procs=2)
        assert 500 not in statuses
