"""Storage chaos: torn writes, bit rot and short reads on the archive path.

Every fault is seed-deterministic (the tear point / flipped bit comes from
``FaultPlan(seed=...)``), so a failing seed replays exactly.  The contract
under test: after any injected storage fault the archive either recovers
byte-identically or fails with a *typed* error (``FaultInjected`` at the
moment of the fault, ``ArchiveCorruption`` on later reads) — it never hands
back wrong bytes and never leaves the archive unopenable.
"""

import pytest

from repro.faults import FaultInjected, FaultPlan, FaultSpec, ReproFaults
from repro.service import ArchiveCorruption, ArchiveStore

#: torn-write targets: every stage of an archive commit.
WRITE_POINTS = {
    "frame": "archive.frame-write",
    "index": "archive.index-write",
    "footer": "archive.footer-write",
}


def _seed_archive(tiny_blob, path: str, copies: int = 1) -> dict[str, bytes]:
    """Two committed entries; returns the expected on-disk payload bytes."""
    expect = {}
    with ArchiveStore(path, mode="w") as arch:
        for i, name in enumerate(("alpha", "beta")):
            arch.add_blob(name, tiny_blob(i + 1), copies=copies)
            expect[name] = tiny_blob(i + 1).to_bytes()
    return expect


class TestTornWrites:
    @pytest.mark.parametrize("stage", sorted(WRITE_POINTS), ids=str)
    def test_torn_write_then_reopen_and_resume(
        self, tmp_path, chaos_seed, chaos_plan, tiny_blob, stage
    ):
        path = str(tmp_path / "torn.rpza")
        expect = _seed_archive(tiny_blob, path)
        plan = chaos_plan(
            FaultPlan([FaultSpec(WRITE_POINTS[stage], "torn-write", at=1)], seed=chaos_seed)
        )
        with ReproFaults(plan, env=False):
            arch = ArchiveStore(path, mode="a")
            with pytest.raises(FaultInjected):  # typed, at the moment of the tear
                arch.add_blob("gamma", tiny_blob(3))
            arch.close()
        # Recover: the archive reopens clean; committed entries are intact
        # byte-for-byte; the interrupted add either became durable (the tear
        # landed after the commit point) or can simply be retried.
        with ArchiveStore(path, mode="a") as arch:
            assert arch.verify(deep=True) == []
            for name, raw in expect.items():
                assert arch.read_bytes(name) == raw
            if "gamma" not in arch:
                arch.add_blob("gamma", tiny_blob(3))
        with ArchiveStore(path) as arch:
            assert arch.verify(deep=True) == []
            assert arch.read_bytes("gamma") == tiny_blob(3).to_bytes()


class TestReadFaults:
    @pytest.mark.parametrize("kind", ["bit-flip", "short-read"])
    def test_transient_read_fault_is_typed_then_recovers(
        self, tmp_path, chaos_seed, chaos_plan, tiny_blob, kind
    ):
        path = str(tmp_path / "rot.rpza")
        expect = _seed_archive(tiny_blob, path)
        plan = chaos_plan(
            FaultPlan([FaultSpec("archive.read", kind, at=1)], seed=chaos_seed)
        )
        with ReproFaults(plan, env=False), ArchiveStore(path) as arch:
            with pytest.raises(ArchiveCorruption):  # typed — never wrong bytes
                arch.get("alpha")
            # Fault window passed: the same handle recovers byte-identically.
            assert arch.read_bytes("alpha") == expect["alpha"]
            assert arch.verify(deep=True) == []

    def test_durable_bit_rot_healed_from_replica(self, tmp_path, chaos_seed, chaos_plan, tiny_blob):
        """Acceptance: repair restores a corrupted replicated archive to
        ``verify --deep``-clean, byte-identically."""
        import random

        path = str(tmp_path / "heal.rpza")
        expect = _seed_archive(tiny_blob, path, copies=2)
        # Durable rot: flip one seeded bit of alpha's primary on disk.
        with ArchiveStore(path) as arch:
            e = arch.entry("alpha")
            off, nbytes = e.offset, e.nbytes
        rng = random.Random(chaos_seed)
        pos = off + rng.randrange(nbytes)
        with open(path, "r+b") as fh:
            fh.seek(pos)
            byte = fh.read(1)[0]
            fh.seek(pos)
            fh.write(bytes([byte ^ (1 << rng.randrange(8))]))
        # Reads must fail typed, never silently serve the rotted frame.
        with ArchiveStore(path) as arch:
            with pytest.raises(ArchiveCorruption):
                arch.get_blob("alpha")
        report = ArchiveStore.repair(path)
        assert report["restored"] == ["alpha"]
        assert report["quarantined"] == []
        with ArchiveStore(path) as arch:
            assert arch.verify(deep=True) == []
            assert arch.read_bytes("alpha") == expect["alpha"]  # byte-identical

    def test_serialize_rot_never_archives_silently(self, tmp_path, chaos_seed, chaos_plan, tiny_blob):
        """Bit rot on the wire bytes at serialize time: the archive's verify
        rejects the frame instead of durably storing garbage as truth."""
        plan = chaos_plan(
            FaultPlan([FaultSpec("container.serialize", "bit-flip", at=1)], seed=chaos_seed)
        )
        path = str(tmp_path / "wire.rpza")
        with ReproFaults(plan, env=False):
            with ArchiveStore(path, mode="w") as arch:
                arch.add_blob("alpha", tiny_blob(1))  # rotted on serialize
        with ArchiveStore(path) as arch:
            problems = arch.verify(deep=True)
            assert problems and "alpha" in problems[0]
            with pytest.raises(ArchiveCorruption):
                arch.get("alpha")
