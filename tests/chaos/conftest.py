"""Seeded chaos harness: fault plans, replay artifacts, live-server scenarios.

Every chaos test runs the production stack (real archives, real TCP, real
worker processes) under a seed-deterministic :class:`repro.faults.FaultPlan`
and asserts the robustness contract: *recover byte-identically or fail with
a typed error — never silently corrupt, never HTTP 500*.

Environment knobs (wired to the CI ``chaos-smoke`` job):

* ``REPRO_CHAOS_SEEDS`` — comma-separated seed matrix (default ``11,23``);
  every seeded test runs once per seed.
* ``REPRO_CHAOS_ARTIFACTS`` — directory; when a chaos test fails, the armed
  fault plan is dumped there as JSON so the exact failure replays with
  ``REPRO_FAULTS=$(cat <artifact>)``.
"""

from __future__ import annotations

import asyncio
import os
import re

import numpy as np
import pytest

from repro import compress
from repro.server import ReproServer


def chaos_seeds() -> list[int]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "11,23")
    return [int(s) for s in raw.split(",") if s.strip()]


@pytest.fixture(params=chaos_seeds(), ids=lambda s: f"seed{s}")
def chaos_seed(request) -> int:
    return request.param


@pytest.fixture()
def chaos_plan(request):
    """Call with the armed plan so a failure dumps it as a replay artifact."""

    def record(plan):
        request.node._chaos_plan = plan
        return plan

    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    plan = getattr(item, "_chaos_plan", None)
    artifact_dir = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if plan is None or not artifact_dir:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    fname = re.sub(r"[^\w.+-]+", "_", item.nodeid) + ".plan.json"
    with open(os.path.join(artifact_dir, fname), "w", encoding="utf-8") as fh:
        fh.write(plan.dumps())


_TINY_BLOBS: dict[int, object] = {}


@pytest.fixture(scope="session")
def tiny_blob():
    """Factory for real, deep-verifiable 8³ frames; ``tag`` makes payloads
    distinct.  Cached per tag so repeated seeds don't recompress."""

    def build(tag: int):
        if tag not in _TINY_BLOBS:
            data = np.linspace(tag, tag + 1, 8**3, dtype=np.float32).reshape(8, 8, 8)
            _TINY_BLOBS[tag] = compress(data, eb=1e-3)
        return _TINY_BLOBS[tag]

    return build


@pytest.fixture()
def field16() -> np.ndarray:
    return np.fromfunction(
        lambda i, j, k: np.sin(i / 5) * np.cos(j / 7) + k / 16, (16, 16, 16)
    ).astype(np.float32)


@pytest.fixture()
def serve(tmp_path):
    """Run ``scenario(server)`` against a live server rooted at ``tmp_path``."""

    def run_scenario(scenario, **server_kwargs):
        server_kwargs.setdefault("archive_root", str(tmp_path))
        server_kwargs.setdefault("port", 0)
        server_kwargs.setdefault("batch_window_ms", 2.0)

        async def main():
            server = ReproServer(**server_kwargs)
            await server.start()
            try:
                return await scenario(server)
            finally:
                await server.stop()

        return asyncio.run(main())

    return run_scenario
