"""Eval chaos: a cell that dies mid-sweep must not poison the matrix.

The runner's per-cell isolation turns an injected fault into one typed
``failed`` cell; everything already finished stays archived, and a resumed
run re-executes only the missing cells and converges to a clean matrix.
"""

from repro.evaluation import parse_config, run_eval
from repro.faults import FaultPlan, FaultSpec, ReproFaults
from repro.service import ArchiveStore


def _cfg():
    return parse_config(
        {
            "eval": {"kind": "cr-table"},
            "matrix": {
                "datasets": ["nyx", "rtm"],
                "codecs": ["cusz-l"],
                "ebs": [1e-2, 1e-3],
            },
            "datasets": {
                "nyx": {"shape": [8, 8, 8]},
                "rtm": {"shape": [8, 8, 8]},
            },
        },
        name="chaos-eval",
    )


def test_faulted_cell_fails_typed_then_resume_completes(
    tmp_path, chaos_seed, chaos_plan
):
    cfg = _cfg()
    arc = str(tmp_path / "eval.rpza")
    plan = chaos_plan(
        FaultPlan([FaultSpec("eval.cell", "error", at=2)], seed=chaos_seed)
    )
    with ReproFaults(plan, env=False):
        run1 = run_eval(cfg, arc)
    # Exactly the faulted cell failed — typed, isolated, not archived.
    assert not run1.ok
    assert len(run1.failed) == 1
    assert len([r for r in run1.cells if r.status == "ok"]) == 3
    failed_cell = run1.failed[0]
    with ArchiveStore(arc) as store:
        assert failed_cell not in store.names()
        assert store.verify(deep=True) == []
    # Resume without the fault: only the missing cell runs, matrix completes.
    run2 = run_eval(cfg, arc)
    assert run2.ok
    assert set(run2.executed) == {failed_cell}
    with ArchiveStore(arc) as store:
        assert store.verify(deep=True) == []
        assert len(store) == 4
