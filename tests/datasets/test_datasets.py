"""Synthetic dataset generators, registry and raw I/O."""

import numpy as np
import pytest

from repro.datasets import DATASETS, dataset_names, load, read_raw, shape_from_filename, write_raw
from repro.datasets.synthetic import gaussian_random_field


class TestRegistry:
    def test_all_paper_datasets(self):
        # Six Table 3 datasets + two extra Fig. 6 lossless-benchmark datasets.
        assert set(dataset_names()) == {
            "cesm-atm", "jhtdb", "miranda", "nyx", "qmcpack", "rtm",
            "hurricane", "scale-letkf",
        }

    def test_paper_dims_recorded(self):
        assert DATASETS["jhtdb"].paper_dims == (512, 512, 512)
        assert DATASETS["qmcpack"].paper_dims == (288, 115, 69, 69)
        assert DATASETS["cesm-atm"].paper_dims == (1800, 3600)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("not-a-dataset")


class TestGenerators:
    @pytest.mark.parametrize("name", dataset_names())
    def test_shape_dtype_contiguity(self, name):
        data = load(name)
        info = DATASETS[name]
        assert data.shape == info.default_shape
        assert data.dtype == np.float32
        assert data.flags["C_CONTIGUOUS"]
        assert np.isfinite(data).all()

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic_in_seed(self, name):
        small = tuple(max(8, d // 2) for d in DATASETS[name].default_shape)
        a = load(name, shape=small, seed=3)
        b = load(name, shape=small, seed=3)
        c = load(name, shape=small, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_custom_shape(self):
        data = load("nyx", shape=(32, 40, 48))
        assert data.shape == (32, 40, 48)

    def test_nyx_dynamic_range(self):
        data = load("nyx")
        # Lognormal: strictly positive with a long upper tail.
        assert data.min() > 0
        assert data.max() / np.median(data) > 20

    def test_miranda_has_interfaces(self):
        data = load("miranda")
        grad = np.abs(np.diff(data, axis=0))
        # Sharp fronts: the max gradient dwarfs the median gradient.
        assert grad.max() > 20 * np.median(grad[grad > 0])


class TestGRF:
    def test_spectral_slope(self):
        """Radially averaged spectrum of a beta-field follows k^-beta."""
        beta = 3.0
        f = gaussian_random_field((256, 256), beta=beta, seed=1)
        spec = np.abs(np.fft.rfftn(f)) ** 2
        kx = np.fft.fftfreq(256) * 256
        ky = np.fft.rfftfreq(256) * 256
        kk = np.sqrt(kx[:, None] ** 2 + ky[None, :] ** 2)
        lo = spec[(kk > 4) & (kk < 8)].mean()
        hi = spec[(kk > 32) & (kk < 64)].mean()
        measured = np.log2(lo / hi) / np.log2(48.0 / 6.0)
        assert measured == pytest.approx(beta, abs=0.7)

    def test_unit_std(self):
        f = gaussian_random_field((64, 64), beta=2.0, seed=0)
        assert f.std() == pytest.approx(1.0, abs=1e-6)

    def test_cutoff_suppresses_high_k(self):
        rough = gaussian_random_field((128,), beta=2.0, seed=0)
        smooth = gaussian_random_field((128,), beta=2.0, seed=0, cutoff=0.2)
        assert np.abs(np.diff(smooth)).mean() < np.abs(np.diff(rough)).mean()


class TestRawIO:
    def test_roundtrip(self, tmp_path):
        data = load("miranda", shape=(16, 20, 24))
        path = tmp_path / "field_16_20_24.f32"
        write_raw(str(path), data)
        back = read_raw(str(path))
        assert np.array_equal(back, data)

    def test_shape_from_filename(self):
        assert shape_from_filename("CLDHGH_1800_3600.f32") == (1800, 3600)
        assert shape_from_filename("x_288_115_69_69.d64") == (288, 115, 69, 69)
        assert shape_from_filename("noshape.f32") is None

    def test_shape_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad_10_10.f32"
        np.zeros(7, np.float32).tofile(path)
        with pytest.raises(ValueError):
            read_raw(str(path))

    def test_explicit_shape_and_dtype(self, tmp_path):
        path = tmp_path / "plain.bin"
        np.arange(24, dtype=np.float64).tofile(path)
        back = read_raw(str(path), shape=(4, 6), dtype=np.float64)
        assert back.shape == (4, 6) and back.dtype == np.float64
