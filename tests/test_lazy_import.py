"""``import repro`` must stay light: heavy subpackages load lazily.

The server layer pulls in ``asyncio``/HTTP machinery and the baseline zoo
pulls in every encoder; a client that only wants ``repro.compress`` should
pay for neither.  These tests run in a fresh interpreter because pytest's
own imports would pollute ``sys.modules``.
"""

import json
import os
import subprocess
import sys

import repro

_PROBE = r"""
import json, sys
import repro
{extra}
heavy = ["repro.server", "repro.analysis", "repro.baselines", "repro.service",
         "asyncio", "http", "http.server"]
print(json.dumps({{m: (m in sys.modules) for m in heavy}}))
"""


def _run_probe(extra: str = "") -> dict:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE.format(extra=extra)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_import_repro_does_not_pull_server_or_asyncio():
    loaded = _run_probe()
    assert not loaded["repro.server"], "repro.server imported eagerly"
    assert not loaded["asyncio"], "asyncio imported by plain `import repro`"
    assert not loaded["http"], "http imported by plain `import repro`"
    assert not loaded["repro.analysis"]
    assert not loaded["repro.baselines"]
    assert not loaded["repro.service"]


def test_lazy_subpackages_resolve_on_attribute_access():
    loaded = _run_probe(extra="repro.server")
    assert loaded["repro.server"], "attribute access must import the subpackage"


def test_default_compress_does_not_import_baselines():
    """Registry entry lookups are metadata-only: compressing with the
    default engine must not pull in the five baseline kernel modules."""
    loaded = _run_probe(
        extra="import numpy as np; "
        "repro.compress(np.zeros((8, 8), dtype=np.float32), eb=1e-3)"
    )
    assert not loaded["repro.baselines"], "default compress imported the baseline zoo"


def test_lazy_attributes_work_in_this_process():
    # __getattr__ routing: the attribute is a real module and gets cached.
    assert repro.analysis.__name__ == "repro.analysis"
    assert repro.baselines.__name__ == "repro.baselines"
    assert "analysis" in dir(repro)


def test_unknown_attribute_still_raises():
    import pytest

    with pytest.raises(AttributeError, match="no attribute"):
        repro.not_a_subpackage
