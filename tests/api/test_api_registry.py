"""The unified codec registry: stable ids, protocol dispatch, typed errors."""

import numpy as np
import pytest

import repro.api as api
from repro.api import (
    CODEC_IDS,
    CapabilityError,
    Codec,
    CodecCapabilities,
    UnknownCodecError,
    build_request,
    codec_class,
    codec_name,
    registry,
)
from repro.core.container import CompressedBlob


class TestStableIds:
    def test_ids_unchanged(self):
        """These ids are persisted in streams — renumbering breaks archives."""
        assert CODEC_IDS == {
            "cusz-hi-cr": 1,
            "cusz-hi-tp": 2,
            "cusz-hi": 3,
            "cusz-hi-tiled": 4,
            "cusz-l": 10,
            "cusz-i": 11,
            "cusz-ib": 12,
            "cuszp2": 20,
            "cuzfp": 30,
            "fzgpu": 40,
        }

    def test_every_user_facing_name_registered(self):
        names = registry.names()
        assert set(names) == set(CODEC_IDS) - {"cusz-hi-tiled"}
        # wire-only ids stay resolvable for decode even though hidden
        assert codec_class(CODEC_IDS["cusz-hi-tiled"]) is not None

    def test_entries_carry_wire_ids(self):
        for name in registry.names():
            assert registry.entry(name).codec_id == CODEC_IDS[name]


class TestProtocol:
    def test_every_codec_satisfies_the_protocol(self):
        for name in registry.names():
            codec = registry.get(name)
            assert isinstance(codec, Codec), name
            assert codec.name == name
            assert isinstance(codec.capabilities(), CodecCapabilities)

    def test_compress_returns_result_with_stripped_request(self, smooth3d):
        codec = registry.get("cusz-l")
        request = build_request(codec="cusz-l", eb=1e-3).with_data(smooth3d)
        result = codec.compress(request)
        assert result.codec == "cusz-l"
        assert result.request.data is None
        assert result.wall_s > 0
        assert result.shape == smooth3d.shape
        recon = codec.decompress(result.blob)
        assert np.abs(smooth3d.astype(np.float64) - recon).max() <= result.error_bound

    def test_request_without_data_rejected(self):
        codec = registry.get("cusz-hi-cr")
        with pytest.raises(api.RequestError, match="carries no data"):
            codec.compress(build_request())

    def test_mismatched_dispatch_rejected(self, smooth3d):
        """A request naming codec A handed to codec B's adapter must fail
        up front, not validate against the wrong capability set."""
        codec = registry.get("cusz-l")
        request = build_request(codec="cusz-hi-cr", eb=1e-2).with_data(smooth3d)
        with pytest.raises(api.RequestError, match="dispatched to 'cusz-l'"):
            codec.compress(request)

    def test_capabilities_table_lists_all(self):
        table = registry.table()
        assert set(table) == set(registry.names())
        assert table["cusz-hi-cr"]["tiling"] is True
        assert table["fzgpu"]["tiling"] is False
        assert table["cuzfp"]["error_bounded"] is False


class TestDispatchFailures:
    """Satellite contract: every dispatch failure path raises a typed error
    with the codec name (or wire id) in the message."""

    def test_unknown_codec_id_in_container_blob(self, smooth3d):
        blob = api.compress(smooth3d, build_request(eb=1e-2)).blob
        blob.codec = 209  # an id nothing has registered
        payload = blob.to_bytes()
        with pytest.raises(UnknownCodecError, match="209") as exc_info:
            api.decompress(payload)
        assert isinstance(exc_info.value, KeyError)  # old catch sites keep working

    def test_unregistered_name_in_registry_get(self):
        with pytest.raises(UnknownCodecError, match="'zstd-hi'"):
            registry.get("zstd-hi")

    def test_capability_mismatch_4d_into_3d_baseline(self):
        field4d = np.zeros((4, 4, 4, 4), dtype=np.float32)
        request = build_request(codec="cuszp2", eb=1e-2)
        with pytest.raises(CapabilityError, match="cuszp2") as exc_info:
            api.compress(field4d, request)
        assert "4-D" in str(exc_info.value)

    def test_capability_mismatch_dtype(self):
        ints = np.zeros((4, 4), dtype=np.int32)
        with pytest.raises(CapabilityError, match="cusz-hi-cr"):
            api.compress(ints, build_request(eb=1e-2))

    def test_fixed_rate_codec_requires_rate_option(self, smooth3d):
        with pytest.raises(CapabilityError, match="cuzfp"):
            api.compress(smooth3d, build_request(codec="cuzfp"))

    def test_register_name_without_wire_id_rejected(self):
        with pytest.raises(UnknownCodecError, match="not-in-table"):
            api.register_codec("not-in-table")(object)


class TestFacade:
    def test_compress_kwargs_build_a_request(self, smooth2d):
        result = api.compress(smooth2d, eb=1e-2, mode="tp")
        assert result.codec == "cusz-hi-tp"
        assert codec_name(result.blob.codec) == "cusz-hi-tp"

    def test_compress_rejects_request_plus_kwargs(self, smooth2d):
        with pytest.raises(api.RequestError, match="not both"):
            api.compress(smooth2d, build_request(), eb=1e-2)

    def test_decompress_bytes_round_trip(self, smooth2d):
        result = api.compress(smooth2d, eb=1e-2)
        recon = api.decompress(result.to_bytes())
        assert np.abs(smooth2d.astype(np.float64) - recon).max() <= result.error_bound

    def test_kernel_for_matches_request(self):
        request = build_request(mode="tp", eb=1e-2, tiles=(8, 8), workers=1)
        kernel = api.kernel_for(request)
        assert kernel.config.tile_shape == (8, 8)
        from repro.encoders.pipelines import TP_PIPELINE

        assert kernel.config.pipeline == TP_PIPELINE

    def test_result_to_dict(self, smooth2d):
        doc = api.compress(smooth2d, eb=1e-2).to_dict()
        assert doc["codec"] == "cusz-hi-cr"
        assert doc["cr"] > 1 and doc["nbytes"] > 0 and doc["wall_s"] >= 0

    def test_options_forward_into_baseline_kernels(self, smooth3d):
        plain = api.compress(
            smooth3d, build_request(codec="cuszp2", eb=1e-2, options={"mode": "plain"})
        )
        assert "plain-widths" in plain.blob.segments
        with pytest.raises(CapabilityError, match="cuszp2"):
            api.compress(smooth3d, build_request(codec="cuszp2", options={"mode": "wat"}))

    def test_pipeline_override(self, smooth2d):
        result = api.compress(smooth2d, build_request(codec="cusz-hi", eb=1e-2, pipeline="HF"))
        assert result.blob.meta["pipeline"] == "HF"
        recon = api.decompress(result.blob)
        assert np.abs(smooth2d.astype(np.float64) - recon).max() <= result.error_bound

    def test_engine_rejects_unknown_options(self, smooth2d):
        """The engine takes no options; silently dropping them would hide
        typos and stale carry-overs from baseline requests."""
        with pytest.raises(CapabilityError, match="accepts no options"):
            api.compress(smooth2d, build_request(eb=1e-2, options={"rate": 8}))


class TestHarnessBridge:
    """repro.analysis.harness resolves kernels through the registry but
    keeps its old fixed-eb contract."""

    def test_make_compressor_rejects_fixed_rate_kernels(self):
        from repro.analysis.harness import make_compressor

        with pytest.raises(KeyError, match="fixed-rate"):
            make_compressor("cuzfp")

    def test_make_compressor_unknown_name(self):
        from repro.analysis.harness import make_compressor

        with pytest.raises(KeyError, match="unknown compressor"):
            make_compressor("gzip")

    def test_factories_mapping_is_consistent(self):
        from repro.analysis.harness import COMPRESSOR_FACTORIES

        assert "cuzfp" not in COMPRESSOR_FACTORIES
        with pytest.raises(KeyError):
            COMPRESSOR_FACTORIES["cuzfp"]
        with pytest.raises(KeyError):
            COMPRESSOR_FACTORIES["gzip"]  # raises at subscript, not call, time
        for name in COMPRESSOR_FACTORIES:
            assert name in COMPRESSOR_FACTORIES
            assert callable(COMPRESSOR_FACTORIES[name])


class TestLegacyShims:
    """The pre-1.4 keyword surface keeps working but warns (one release)."""

    def test_mode_kwarg_warns(self, smooth2d):
        import repro

        with pytest.deprecated_call():
            blob = repro.compress(smooth2d, 1e-2, mode="tp")
        assert blob.codec == CODEC_IDS["cusz-hi-tp"]

    def test_codec_kwarg_warns(self, smooth2d):
        import repro

        with pytest.deprecated_call():
            blob = repro.compress(smooth2d, 1e-2, codec="fzgpu")
        assert blob.codec == CODEC_IDS["fzgpu"]

    def test_tile_shape_kwarg_warns(self, smooth2d):
        import repro

        with pytest.deprecated_call():
            blob = repro.compress(smooth2d, 1e-2, tile_shape=(32, 32))
        assert blob.codec == CODEC_IDS["cusz-hi-tiled"]

    def test_plain_call_does_not_warn(self, smooth2d):
        import repro
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            blob = repro.compress(smooth2d, 1e-2)
        assert blob.codec == CODEC_IDS["cusz-hi-cr"]

    def test_missing_eb_still_a_hard_error(self, smooth2d):
        """eb was a required positional pre-1.4; omitting it must not
        silently compress under a defaulted bound."""
        import repro

        with pytest.raises(TypeError, match="error bound"):
            repro.compress(smooth2d)

    def test_top_level_codec_class_still_exported(self, smooth2d):
        import repro

        blob = repro.compress(smooth2d, 1e-2)
        assert repro.codec_class(blob.codec)().decompress(blob).shape == smooth2d.shape

    def test_request_kwarg_returns_blob(self, smooth2d):
        import repro

        blob = repro.compress(smooth2d, request=build_request(eb=1e-2))
        assert isinstance(blob, CompressedBlob)

    def test_eb_alongside_request_is_a_conflict(self, smooth2d):
        """Regression: an explicit eb next to a request was silently ignored
        in favor of the request's (possibly much looser) bound."""
        import repro

        with pytest.raises(api.RequestError, match="not both"):
            repro.compress(smooth2d, 1e-6, request=build_request(eb=1e-2))

    def test_legacy_workers_without_tiles_still_rejected(self, smooth2d):
        import repro

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="require tiles"):
                repro.compress(smooth2d, 1e-2, workers=2)
