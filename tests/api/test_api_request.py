"""The unified request/result contract: specs, defaulting, serialization."""

import numpy as np
import pytest

from repro.api import (
    DEFAULT_CODEC,
    REQUEST_SCHEMA,
    CapabilityError,
    CompressionRequest,
    ErrorBoundSpec,
    PipelineSpec,
    RequestError,
    TilingSpec,
    build_request,
)


class TestErrorBoundSpec:
    def test_defaults(self):
        spec = ErrorBoundSpec()
        assert spec.value == 1e-3 and spec.mode == "rel"

    @pytest.mark.parametrize("bad", [0, -1e-3, float("nan"), float("inf"), "x", True, None])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(RequestError):
            ErrorBoundSpec(value=bad)

    def test_invalid_mode_rejected(self):
        with pytest.raises(RequestError, match="'rel' or 'abs'"):
            ErrorBoundSpec(mode="relative")

    def test_round_trip(self):
        spec = ErrorBoundSpec(1e-4, "abs")
        assert ErrorBoundSpec.from_dict(spec.to_dict()) == spec


class TestTilingSpec:
    def test_valid(self):
        spec = TilingSpec(tiles=(64, 64), executor="threads", workers=4)
        assert spec.tiles == (64, 64)

    @pytest.mark.parametrize("bad", [(), (0,), (8, -1), ("a",), None, 8])
    def test_bad_tiles_rejected(self, bad):
        with pytest.raises(RequestError):
            TilingSpec(tiles=bad)

    def test_bad_executor_rejected(self):
        with pytest.raises(RequestError, match="executor"):
            TilingSpec(tiles=(8,), executor="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(RequestError, match="workers"):
            TilingSpec(tiles=(8,), workers=-1)

    def test_round_trip(self):
        spec = TilingSpec(tiles=(16, 16, 16), executor="processes", workers=2)
        assert TilingSpec.from_dict(spec.to_dict()) == spec


class TestCompressionRequest:
    def test_defaults(self):
        req = CompressionRequest()
        assert req.codec == DEFAULT_CODEC
        assert req.tiling is None and req.pipeline is None and req.data is None

    def test_coercions(self):
        req = CompressionRequest(
            error_bound=1e-2, tiling=(32, 32), pipeline="HF", options={"a": 1}, meta={"k": "v"}
        )
        assert req.error_bound == ErrorBoundSpec(1e-2)
        assert req.tiling == TilingSpec(tiles=(32, 32))
        assert req.pipeline == PipelineSpec("HF")
        assert req.option("a") == 1 and dict(req.meta)["k"] == "v"

    def test_hashable_and_data_excluded_from_eq(self):
        a = CompressionRequest().with_data(np.zeros(4, np.float32))
        b = CompressionRequest().with_data(np.ones(4, np.float32))
        assert a == b and hash(a) == hash(b)
        assert a.without_data().data is None

    def test_to_dict_schema_and_round_trip(self):
        req = build_request(mode="tp", eb=1e-2, tiles=(64,), workers=3, executor="serial")
        doc = req.to_dict()
        assert doc["schema"] == REQUEST_SCHEMA
        assert CompressionRequest.from_dict(doc) == req

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(RequestError, match="unknown keys"):
            CompressionRequest.from_dict({"codec": "cusz-hi-cr", "wat": 1})

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(RequestError, match="schema"):
            CompressionRequest.from_dict({"schema": "other/9"})

    def test_with_tiling_execution(self):
        req = build_request(tiles=(8, 8))
        pinned = req.with_tiling_execution("serial", 1)
        assert pinned.tiling.executor == "serial" and pinned.tiling.workers == 1
        assert build_request().with_tiling_execution("serial", 1).tiling is None


class TestBuildRequest:
    def test_mode_sugar(self):
        assert build_request(mode="cr").codec == "cusz-hi-cr"
        assert build_request(mode="tp").codec == "cusz-hi-tp"

    def test_mode_conflicts_with_codec(self):
        with pytest.raises(RequestError, match="conflicts with codec"):
            build_request(mode="cr", codec="fzgpu")

    def test_bad_mode(self):
        with pytest.raises(RequestError, match="mode must be"):
            build_request(mode="fast")

    def test_workers_without_tiles_rejected(self):
        with pytest.raises(RequestError, match="require tiles"):
            build_request(workers=2)
        with pytest.raises(RequestError, match="require tiles"):
            build_request(executor="threads")

    def test_base_overrides(self):
        base = build_request(mode="tp", eb=1e-2, tiles=(32, 32), meta={"job": "j"})
        override = build_request(base=base, eb=1e-4)
        assert override.codec == "cusz-hi-tp"
        assert override.error_bound.value == 1e-4
        assert override.tiling == base.tiling
        assert dict(override.meta) == {"job": "j"}

    def test_codec_override_drops_codec_specific_carryovers(self):
        base = build_request(mode="cr", tiles=(32, 32), pipeline="HF")
        override = build_request(base=base, codec="fzgpu")
        assert override.codec == "fzgpu"
        assert override.tiling is None and override.pipeline is None

    def test_mode_override_keeps_inherited_tiling(self):
        """Regression: mode sugar switches engine variants — it must not be
        treated as a codec change that drops the base's tiling/pipeline."""
        base = build_request(mode="cr", tiles=(16, 16, 16), pipeline="HF")
        override = build_request(base=base, mode="tp")
        assert override.codec == "cusz-hi-tp"
        assert override.tiling == base.tiling
        assert override.pipeline == base.pipeline

    def test_scalar_tiles_is_a_request_error_not_typeerror(self):
        """Regression: tuple(8) used to escape as a raw TypeError."""
        with pytest.raises(RequestError, match="tiles"):
            build_request(tiles=8)

    def test_tiling_capability_enforced_at_build(self):
        with pytest.raises(CapabilityError, match="fzgpu"):
            build_request(codec="fzgpu", tiles=(8, 8))

    def test_unknown_codec_at_build(self):
        from repro.api import UnknownCodecError

        with pytest.raises(UnknownCodecError, match="gzip"):
            build_request(codec="gzip")
