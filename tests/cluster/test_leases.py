"""Lease state machine: unit behavior + seeded random-schedule properties.

The property suite drives :class:`LeaseBoard` through randomized worker
join/leave/SIGKILL schedules on a simulated clock and asserts the two
invariants the distributed tier sells (ISSUE satellite):

* every field is acked (lands in ``done``) exactly once, and
* ``len(board.reassignments)`` equals the number of lease expirations.
"""

import random

import pytest

from repro.cluster.leases import LeaseBoard

FIELDS = [("a", 50.0), ("b", 10.0), ("c", 100.0), ("d", 10.0), ("e", 1.0)]


class TestLeaseBoardBasics:
    def test_lpt_order_largest_first(self):
        board = LeaseBoard(FIELDS, ttl_s=10.0)
        order = [board.lease("w", now=0.0).field for _ in range(5)]
        assert order == ["c", "a", "b", "d", "e"]  # cost desc, ties by name

    def test_empty_queue_returns_none_until_drained(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=10.0)
        lease = board.lease("w", now=0.0)
        assert board.lease("w", now=0.0) is None
        assert not board.drained  # in flight, not done
        assert board.ack(lease.lease_id, now=1.0) == "ok"
        assert board.drained

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LeaseBoard([("a", 1.0), ("a", 2.0)])

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_s"):
            LeaseBoard(FIELDS, ttl_s=0.0)

    def test_unknown_lease_ack(self):
        board = LeaseBoard(FIELDS, ttl_s=10.0)
        assert board.ack("L999", now=0.0) == "unknown"

    def test_failed_status_recorded(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=10.0)
        lease = board.lease("w", now=0.0)
        assert board.ack(lease.lease_id, now=1.0, status="failed") == "ok"
        assert board.done["a"].status == "failed"
        assert board.counts()["failed"] == 1


class TestExpiryAndRequeue:
    def test_expired_lease_requeues_at_front(self):
        board = LeaseBoard(FIELDS, ttl_s=5.0)
        lease = board.lease("w0", now=0.0)  # takes "c"
        assert [e.field for e in board.expire(now=6.0)] == ["c"]
        # "c" must come back before the untouched tail of the queue.
        assert board.lease("w1", now=6.0).field == "c"
        assert len(board.reassignments) == 1
        assert board.reassignments[0]["worker"] == "w0"
        assert board.reassignments[0]["lease_id"] == lease.lease_id

    def test_heartbeat_renews_all_of_a_workers_leases(self):
        board = LeaseBoard(FIELDS, ttl_s=5.0)
        board.lease("w0", now=0.0)
        board.lease("w0", now=0.0)
        board.lease("w1", now=0.0)
        assert board.heartbeat("w0", now=4.0) == 2
        expired = board.expire(now=6.0)  # only w1's lease lapses
        assert [e.worker for e in expired] == ["w1"]

    def test_late_ack_after_expiry_counts_once(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=5.0)
        lease = board.lease("w0", now=0.0)
        board.expire(now=6.0)  # requeued
        assert board.ack(lease.lease_id, now=7.0) == "late"
        assert board.done["a"].late
        # The requeued copy must not be granted again.
        assert board.lease("w1", now=7.0) is None
        assert board.drained

    def test_late_ack_loses_to_completed_regrant(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=5.0)
        stale = board.lease("w0", now=0.0)
        board.expire(now=6.0)
        fresh = board.lease("w1", now=6.0)
        assert board.ack(fresh.lease_id, now=7.0) == "ok"
        assert board.ack(stale.lease_id, now=8.0) == "duplicate"
        assert board.done["a"].worker == "w1"
        assert board.duplicate_acks == 1

    def test_regrant_after_late_ack_is_duplicate(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=5.0)
        stale = board.lease("w0", now=0.0)
        board.expire(now=6.0)
        fresh = board.lease("w1", now=6.0)  # re-granted before the late ack
        assert board.ack(stale.lease_id, now=7.0) == "late"
        assert board.ack(fresh.lease_id, now=8.0) == "duplicate"
        assert board.done["a"].worker == "w0"

    def test_expire_is_idempotent_per_expiration(self):
        board = LeaseBoard([("a", 1.0)], ttl_s=5.0)
        board.lease("w0", now=0.0)
        assert len(board.expire(now=6.0)) == 1
        assert board.expire(now=7.0) == []  # nothing left to expire
        assert len(board.reassignments) == 1


def _random_schedule(seed: int, n_fields: int, n_workers: int):
    """One randomized run: workers join/leave/die, leases expire, acks race.

    Returns (board, expirations) after driving the schedule to drain.
    """
    rng = random.Random(seed)
    fields = [(f"f{i}", float(rng.randrange(1, 1000))) for i in range(n_fields)]
    board = LeaseBoard(fields, ttl_s=float(rng.choice([2, 5, 10])))
    now = 0.0
    alive = {f"w{i}" for i in range(n_workers)}
    held: dict[str, list] = {w: [] for w in alive}
    stale: list = []  # leases held by SIGKILLed workers (acks never arrive)
    expirations = 0
    for _step in range(10_000):
        if board.drained:
            break
        now += rng.random() * board.ttl_s
        action = rng.random()
        if action < 0.10 and len(alive) > 1:  # SIGKILL: leases leak until expiry
            victim = rng.choice(sorted(alive))
            alive.discard(victim)
            stale.extend(held.pop(victim))
        elif action < 0.15:  # a new worker joins (or a dead one restarts)
            name = f"w{rng.randrange(100)}"
            alive.add(name)
            held.setdefault(name, [])
        elif action < 0.45:  # someone finishes a field
            candidates = [w for w in alive if held[w]]
            if candidates:
                worker = rng.choice(sorted(candidates))
                lease = held[worker].pop(rng.randrange(len(held[worker])))
                board.ack(lease.lease_id, now, status=rng.choice(["ok", "ok", "failed"]))
        elif action < 0.55 and stale:  # a "dead" worker's ack arrives anyway
            lease = stale.pop(rng.randrange(len(stale)))
            board.ack(lease.lease_id, now)
        elif action < 0.75:  # someone pulls work
            worker = rng.choice(sorted(alive))
            lease = board.lease(worker, now)
            if lease is not None:
                held[worker].append(lease)
        elif action < 0.85:  # a worker heartbeats
            board.heartbeat(rng.choice(sorted(alive)), now)
        else:  # the sweeper runs
            expirations += len(board.expire(now))
        # Safety: anything held by a live worker past TTL can also expire.
        if rng.random() < 0.3:
            expired = board.expire(now)
            expirations += len(expired)
            for w in held:
                held[w] = [h for h in held[w] if h not in expired]
    # Drain the tail deterministically: one surviving worker finishes up.
    for _ in range(10 * n_fields):
        if board.drained:
            break
        now += board.ttl_s + 1.0
        expirations += len(board.expire(now))
        lease = board.lease("finisher", now)
        if lease is not None:
            board.ack(lease.lease_id, now)
    return board, expirations


class TestLeaseProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_exactly_once_and_reassignment_accounting(self, seed):
        board, expirations = _random_schedule(seed, n_fields=17, n_workers=4)
        assert board.drained, f"seed {seed}: schedule did not drain"
        # Exactly-once: every field is done, none granted or pending.
        assert sorted(board.done) == sorted(board.costs)
        assert board.pending == [] and board.leased == []
        # Reassignment ledger matches observed expirations one-to-one.
        assert len(board.reassignments) == expirations
        # No field was recorded done twice (dict keys prove uniqueness; the
        # duplicate counter proves racing acks were rejected, not merged).
        assert all(rec.field == name for name, rec in board.done.items())

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_single_worker_no_expiry_means_no_reassignments(self, seed):
        rng = random.Random(seed)
        fields = [(f"f{i}", float(rng.randrange(1, 100))) for i in range(9)]
        board = LeaseBoard(fields, ttl_s=1000.0)
        now = 0.0
        while not board.drained:
            now += 1.0
            lease = board.lease("solo", now)
            assert lease is not None
            board.ack(lease.lease_id, now)
        assert board.reassignments == []
        assert board.duplicate_acks == 0
        assert {rec.worker for rec in board.done.values()} == {"solo"}
