"""Cluster end-to-end: convergence, chaos (SIGKILL / coordinator faults),
byte-identity of the merged shard set against the single-node batch runner."""

import json
import os
import subprocess
import sys
import threading
import time

from repro.client import ReproClient, RetryPolicy
from repro.cluster import (
    REPORT_SCHEMA,
    STATUS_SCHEMA,
    ClusterWorker,
    CoordinatorThread,
    ShardSet,
    run_cluster,
)
from repro.faults import FaultPlan, FaultSpec, ReproFaults
from repro.service import ArchiveStore
from repro.service.manifest import parse_manifest
from repro.service.runner import BatchRunner

MANIFEST = {
    "job": {"name": "e2e", "eb": 1e-3, "mode": "cr"},
    "fields": [
        {"name": "nyx-a", "dataset": "nyx", "shape": [24, 24, 24], "seed": 1, "hot": True},
        {"name": "miranda-b", "dataset": "miranda", "shape": [16, 20, 20], "seed": 2},
        {"name": "cesm-c", "dataset": "cesm-atm", "shape": [48, 96], "seed": 3},
        {
            "name": "rtm-d",
            "dataset": "rtm",
            "shape": [14, 14, 14],
            "seed": 4,
            "timesteps": 2,
            "temporal": True,
        },
    ],
}


def _spec():
    return parse_manifest(MANIFEST)


def _run_workers(address, shard_paths, **worker_kw):
    """Drive N in-process workers to completion; returns their summaries."""
    summaries = [None] * len(shard_paths)

    def _one(i, shard):
        worker = ClusterWorker(
            address,
            shard,
            name=f"t{i}",
            policy=RetryPolicy(base_s=0.01, cap_s=0.1, deadline_s=30.0),
            seed=i,
            poll_interval_s=0.05,
            **worker_kw,
        )
        summaries[i] = worker.run()

    threads = [
        threading.Thread(target=_one, args=(i, shard), daemon=True)
        for i, shard in enumerate(shard_paths)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return summaries


class TestInProcessConvergence:
    def test_two_workers_drain_and_report(self, tmp_path):
        coordinator = CoordinatorThread(_spec(), lease_ttl_s=10.0).start()
        shards = [str(tmp_path / f"t{i}.rpza") for i in range(2)]
        try:
            summaries = _run_workers(coordinator.address, shards)
            assert coordinator.wait_drained(timeout_s=5)
            report = coordinator.coordinator.report()
        finally:
            coordinator.stop()
        assert report["schema"] == REPORT_SCHEMA
        assert report["drained"] and report["ok"] == 4 and report["failed"] == 0
        assert report["reassignments"] == [] and report["duplicate_acks"] == 0
        assert sorted(report["field_status"]) == ["cesm-c", "miranda-b", "nyx-a", "rtm-d"]
        # Work is partitioned, never duplicated.
        done = [f for s in summaries for f in s["fields"]]
        assert sorted(done) == sorted(report["field_status"])
        # Keep-alive held: each worker's lease/ack traffic rode few sockets.
        for s in summaries:
            assert s["client"]["conn_opens"] <= 2
        with ShardSet(shards) as merged:
            assert merged.verify(expected=list(report["field_status"])) == []

    def test_status_endpoint_shape(self, tmp_path):
        coordinator = CoordinatorThread(_spec(), lease_ttl_s=10.0).start()
        try:
            host, port = coordinator.address.rsplit(":", 1)
            client = ReproClient(host, int(port), policy=RetryPolicy(base_s=0.01))
            status = client.get("/cluster").json()
            assert status["schema"] == STATUS_SCHEMA
            assert status["counts"]["fields"] == 4
            assert status["drained"] is False
            assert len(status["pending"]) == 4 and status["leased"] == []
            # LPT: the most expensive field (largest element count) leads.
            assert status["pending"][0] == "nyx-a"
            report = client.get("/report").json()
            assert report["schema"] == REPORT_SCHEMA and report["drained"] is False
            assert client.get("/healthz").json()["job"] == "e2e"
            assert client.get("/nope").status == 404
            assert client.post("/manifest", b"{}").status == 405
            client.close()
        finally:
            coordinator.stop()

    def test_coordinator_faults_are_retried_by_workers(self, tmp_path):
        # One injected 503 on the first lease grant and one on the first ack:
        # the client's retry loop absorbs both and the run still converges.
        plan = FaultPlan(
            [
                FaultSpec("cluster.lease-grant", "error", at=1),
                FaultSpec("cluster.ack", "error", at=1),
            ],
            seed=11,
        )
        with ReproFaults(plan, env=False):
            coordinator = CoordinatorThread(_spec(), lease_ttl_s=10.0).start()
            shards = [str(tmp_path / "solo.rpza")]
            try:
                (summary,) = _run_workers(coordinator.address, shards)
                assert coordinator.wait_drained(timeout_s=5)
                report = coordinator.coordinator.report()
            finally:
                coordinator.stop()
        assert report["drained"] and report["ok"] == 4
        assert summary["client"]["retries"] >= 2  # one per injected 503
        # The 503s were transparent: nothing reassigned, nothing doubled.
        assert report["reassignments"] == [] and report["duplicate_acks"] == 0

    def test_crash_resume_acks_without_recompute(self, tmp_path):
        # A shard pre-loaded with a committed entry is the restarted-worker
        # state: the new life acks `resumed` instead of recompressing.
        spec = _spec()
        shard = str(tmp_path / "resume.rpza")
        single = str(tmp_path / "single.rpza")
        BatchRunner(spec, single, executor="serial").run()
        with ArchiveStore(single) as src, ArchiveStore(shard, mode="w") as dst:
            entry = src.entry("nyx-a")
            dst.add_blob("nyx-a", src.read_bytes("nyx-a"), meta=dict(entry.meta))
        coordinator = CoordinatorThread(spec, lease_ttl_s=10.0).start()
        try:
            (summary,) = _run_workers(coordinator.address, [shard])
            assert coordinator.wait_drained(timeout_s=5)
            report = coordinator.coordinator.report()
        finally:
            coordinator.stop()
        assert summary["resumed"] == 1 and summary["ok"] == 4
        assert report["workers"]["t0"]["resumed"] == 1
        assert report["ok"] == 4 and report["failed"] == 0


class TestSubprocessCluster:
    """`run_cluster`: real worker subprocesses, real SIGKILL, merged verify."""

    def test_converges_and_matches_single_node_bytes(self, tmp_path):
        spec = _spec()
        report = run_cluster(
            spec, str(tmp_path / "out"), workers=2, lease_ttl_s=10.0, timeout_s=120.0
        )
        assert report["drained"] and report["ok"] == 4 and report["failed"] == 0
        assert report["verify_problems"] == [] and report["respawns"] == 0
        # Replication: the hot field lives in both worker shards.
        assert sorted(report["replicas"]["placement"]["nyx-a"]) == [
            "worker-0.rpza",
            "worker-1.rpza",
        ]
        # Byte-identity: the merged shard set serves exactly the bytes the
        # single-node batch runner would have archived.
        single = str(tmp_path / "single.rpza")
        BatchRunner(spec, single, executor="serial").run()
        shard_paths = [str(tmp_path / "out" / s) for s in report["shards"]]
        with ShardSet(shard_paths) as merged, ArchiveStore(single) as solo:
            for name in solo.names():
                assert merged.read_bytes(name) == solo.read_bytes(name), name

    def test_sigkilled_worker_is_respawned_and_fields_reassigned(self, tmp_path):
        # Worker 0 SIGKILLs itself at its second shard append (the canonical
        # lost-worker drill, same plan as configs/cluster_kill_worker.json);
        # the babysitter respawns it on the same shard and the lease sweeper
        # reassigns whatever the dead life still held.
        plan = FaultPlan([FaultSpec("cluster.shard-append", "kill", at=2)], seed=7)
        report = run_cluster(
            _spec(),
            str(tmp_path / "out"),
            workers=2,
            lease_ttl_s=2.0,
            timeout_s=120.0,
            worker_env={0: {"REPRO_FAULTS": plan.dumps()}},
        )
        assert report["drained"] and report["ok"] == 4 and report["failed"] == 0
        assert report["respawns"] == 1
        assert report["verify_problems"] == []
        # The kill interrupted a lease mid-hold: it must appear in the ledger
        # exactly once, charged to the dead life of worker 0.
        assert len(report["reassignments"]) >= 1
        assert any(r["worker"] == "w0" for r in report["reassignments"])
        # The respawned life shows up in the worker registry.
        assert "w0r" in report["workers"]

    def test_worker_cli_entrypoint_runs(self, tmp_path):
        # The exact argv run_cluster spawns, driven manually against a live
        # coordinator — pins the CLI contract a respawn depends on.
        spec = _spec()
        coordinator = CoordinatorThread(spec, lease_ttl_s=10.0).start()
        shard = str(tmp_path / "cli.rpza")
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        try:
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "cluster",
                    "worker",
                    "--coordinator",
                    coordinator.address,
                    "--shard",
                    shard,
                    "--name",
                    "cliw",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert coordinator.wait_drained(timeout_s=5)
        finally:
            coordinator.stop()
        assert proc.returncode == 0, proc.stderr
        assert "cliw: 4 ok" in proc.stdout
        with ArchiveStore(shard) as arch:
            assert len(arch) == 4


class TestExpiryReassignment:
    def test_silent_worker_forfeits_lease_to_peer(self, tmp_path):
        # A worker that leases a field and then goes silent (no ack, no
        # heartbeat) must lose it to the sweeper; a live worker finishes it.
        spec = _spec()
        coordinator = CoordinatorThread(spec, lease_ttl_s=0.6).start()
        address = coordinator.address
        host, port = address.rsplit(":", 1)
        try:
            dead = ReproClient(host, int(port), policy=RetryPolicy(base_s=0.01))
            grant = dead.post(
                "/lease", json.dumps({"worker": "ghost"}).encode()
            ).json()
            assert grant["status"] == "granted"
            dead.close()  # never acks, never heartbeats
            time.sleep(1.0)  # > ttl: the sweeper requeues ghost's field
            shards = [str(tmp_path / "live.rpza")]
            _run_workers(address, shards)
            assert coordinator.wait_drained(timeout_s=10)
            report = coordinator.coordinator.report()
        finally:
            coordinator.stop()
        assert report["ok"] == 4
        assert [r["worker"] for r in report["reassignments"]] == ["ghost"]
        assert report["field_status"][grant["field"]] == "ok"
        with ShardSet([str(tmp_path / "live.rpza")]) as merged:
            assert merged.missing(report["field_status"]) == []
