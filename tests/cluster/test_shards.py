"""ShardSet: routing, coverage accounting, lost-shard fallback, replication."""

import numpy as np
import pytest

from repro import CuszHi
from repro.cluster.shards import REPLICA_KEY, ShardSet
from repro.core.streaming import StreamReader, StreamWriter
from repro.datasets import load
from repro.service import ArchiveError, ArchiveStore

FIELDS = {
    "nyx-a": ("nyx", (16, 16, 16), 1),
    "nyx-b": ("nyx", (14, 14, 14), 2),
    "miranda-c": ("miranda", (12, 16, 16), 3),
}


@pytest.fixture(scope="module")
def blobs():
    comp = CuszHi(mode="cr")
    out = {}
    for name, (dataset, shape, seed) in FIELDS.items():
        data = load(dataset, shape=shape, seed=seed)
        out[name] = (comp.compress(data, 1e-3), data)
    return out


@pytest.fixture()
def shard_paths(tmp_path, blobs):
    """Three shards: s0 holds nyx-a + nyx-b, s1 holds miranda-c, s2 empty."""
    paths = [str(tmp_path / f"s{i}.rpza") for i in range(3)]
    with ArchiveStore(paths[0], mode="w") as arch:
        arch.add_blob("nyx-a", blobs["nyx-a"][0], meta={"worker": "w0"})
        arch.add_blob("nyx-b", blobs["nyx-b"][0], meta={"worker": "w0"})
    with ArchiveStore(paths[1], mode="w") as arch:
        arch.add_blob("miranda-c", blobs["miranda-c"][0], meta={"worker": "w1"})
    with ArchiveStore(paths[2], mode="w"):
        pass  # a worker that never won a lease still leaves a valid shard
    return paths


class TestRouting:
    def test_merged_names_and_locations(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            assert shards.names() == ["miranda-c", "nyx-a", "nyx-b"]
            assert shards.locations("nyx-a") == [shard_paths[0]]
            assert shards.locations("miranda-c") == [shard_paths[1]]
            assert shards.locations("ghost") == []

    def test_reads_route_to_owning_shard(self, shard_paths, blobs):
        with ShardSet(shard_paths) as shards:
            for name, (_blob, data) in blobs.items():
                entry = shards.entry(name)
                recon = shards.get(name)
                assert recon.shape == data.shape
                assert np.abs(data.astype(np.float64) - recon).max() <= entry.eb_abs
            assert shards.get_blob("nyx-a").to_bytes() == blobs["nyx-a"][0].to_bytes()

    def test_unknown_entry_names_readable_and_lost_shards(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            with pytest.raises(ArchiveError, match="no shard holds"):
                shards.read_bytes("ghost")

    def test_needs_at_least_one_path(self):
        with pytest.raises(ArchiveError, match="at least one"):
            ShardSet([])


class TestCoverage:
    def test_missing_against_manifest(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            assert shards.missing(["nyx-a", "zeta", "alpha"]) == ["alpha", "zeta"]
            assert shards.verify(expected=["nyx-a", "zeta"]) == ["missing everywhere: zeta"]

    def test_untagged_duplicate_is_flagged(self, shard_paths, blobs):
        # Two workers both computed nyx-a: exactly-once broke, verify says so.
        with ArchiveStore(shard_paths[2], mode="a") as arch:
            arch.add_blob("nyx-a", blobs["nyx-a"][0], meta={"worker": "w2"})
        with ShardSet(shard_paths) as shards:
            assert shards.duplicates() == {"nyx-a": [shard_paths[0], shard_paths[2]]}
            assert any("primary copy in 2 shards" in p for p in shards.verify())

    def test_clean_set_verifies_empty(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            assert shards.verify(expected=list(FIELDS), deep=True) == []


class TestLostShard:
    def test_unreadable_shard_is_a_problem_not_a_crash(self, shard_paths, blobs):
        with open(shard_paths[1], "r+b") as fh:  # stomp the header/magic
            fh.write(b"\x00" * 16)
        with ShardSet(shard_paths) as shards:
            assert list(shards.errors) == [shard_paths[1]]
            # Surviving shards still serve their fields...
            assert shards.get("nyx-a").shape == blobs["nyx-a"][1].shape
            # ...the lost shard's field is named in coverage problems...
            problems = shards.verify(expected=list(FIELDS))
            assert any("unreadable shard" in p for p in problems)
            assert "missing everywhere: miranda-c" in problems
            # ...and a direct read fails loudly, naming the lost shard.
            with pytest.raises(ArchiveError, match="lost.*s1"):
                shards.get("miranda-c")


class TestReplicate:
    def test_replicas_spread_tagged_and_survive_shard_loss(self, shard_paths, blobs):
        with ShardSet(shard_paths) as shards:
            placement = shards.replicate(["nyx-a", "miranda-c"], k=2)
            raw = {n: shards.read_bytes(n) for n in placement}
        assert len(placement["nyx-a"]) == 2 and placement["nyx-a"][0] == shard_paths[0]
        assert len(placement["miranda-c"]) == 2
        # Copies went to distinct shards, spreading to the emptiest first.
        assert placement["nyx-a"][1] != placement["miranda-c"][1] or shard_paths[2] in (
            placement["nyx-a"][1],
            placement["miranda-c"][1],
        )
        with ShardSet(shard_paths) as shards:
            entry = shards.stores[placement["nyx-a"][1]].entry("nyx-a")
            assert entry.meta[REPLICA_KEY] == "s0.rpza"
            assert shards.duplicates() == {}  # replicas never read as duplicates
            assert shards.verify(expected=list(FIELDS)) == []
        # The replication guarantee: lose the home shard, reads still work
        # and return byte-identical payloads.
        import os

        os.unlink(shard_paths[0])
        surviving = [p for p in shard_paths if p != shard_paths[0]]
        with ShardSet(surviving) as shards:
            assert shards.read_bytes("nyx-a") == raw["nyx-a"]
            recon = shards.get("nyx-a")
            data = blobs["nyx-a"][1]
            assert np.abs(data.astype(np.float64) - recon).max() <= 1e-3 * np.ptp(data)

    def test_corrupt_primary_falls_back_to_replica(self, shard_paths, blobs):
        with ShardSet(shard_paths) as shards:
            shards.replicate(["nyx-a"], k=2)
            entry = shards.stores[shard_paths[0]].entry("nyx-a")
            offset, nbytes = entry.offset, entry.nbytes
        with open(shard_paths[0], "r+b") as fh:  # rot one payload byte
            fh.seek(offset + nbytes // 2)
            rotted = fh.read(1)[0] ^ 0x40
            fh.seek(offset + nbytes // 2)
            fh.write(bytes([rotted]))
        with ShardSet(shard_paths) as shards:
            # get_blob validates the container checksum, detects the rot in
            # the primary, and silently serves the replica instead.
            assert shards.get_blob("nyx-a").to_bytes() == blobs["nyx-a"][0].to_bytes()

    def test_degraded_placement_when_k_exceeds_shards(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            placement = shards.replicate(["nyx-b"], k=5)
            # As wide as possible (3 shards), short of k — degraded, not fatal.
            assert sorted(placement["nyx-b"]) == sorted(shard_paths)
            assert shards.verify(expected=list(FIELDS)) == []

    def test_replicate_is_idempotent(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            first = shards.replicate(["nyx-a"], k=2)
            again = shards.replicate(["nyx-a"], k=2)
            assert first == again

    def test_replicate_unknown_field_raises(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            with pytest.raises(ArchiveError, match="no shard holds"):
                shards.replicate(["ghost"], k=2)

    def test_bad_k_rejected(self, shard_paths):
        with ShardSet(shard_paths) as shards:
            with pytest.raises(ArchiveError, match="replication factor"):
                shards.replicate(["nyx-a"], k=0)

    def test_stream_entries_replicate_and_decode(self, shard_paths):
        # Temporal streams go through add_stream, not add_blob — the replica
        # must keep kind/shape/timesteps so readers decode it transparently.
        snaps = [load("rtm", shape=(12, 12, 12), seed=9 + t) for t in range(3)]
        writer = StreamWriter(eb=1e-3, temporal=True)
        for snap in snaps:
            writer.append(snap)
        payload = writer.getvalue()
        with ArchiveStore(shard_paths[2], mode="a") as arch:
            arch.add_stream(
                "rtm-s",
                payload,
                shape=snaps[0].shape,
                dtype=snaps[0].dtype,
                eb_abs=float(writer._abs_eb),
                timesteps=3,
                meta={"worker": "w2"},
            )
        with ShardSet(shard_paths) as shards:
            placement = shards.replicate(["rtm-s"], k=2)
            other = placement["rtm-s"][1]
            entry = shards.stores[other].entry("rtm-s")
            assert entry.kind == "stream" and entry.timesteps == 3
            assert shards.read_bytes("rtm-s") == payload
        import os

        os.unlink(shard_paths[2])
        with ShardSet([shard_paths[0], shard_paths[1]]) as shards:
            frames = list(StreamReader(shards.read_bytes("rtm-s")))
            assert len(frames) == 3
            assert np.abs(frames[0].astype(np.float64) - snaps[0]).max() <= writer._abs_eb
