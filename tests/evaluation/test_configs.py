"""Drift guard for the committed experiment configs under ``configs/``.

Each config IS a paper figure/table definition; its axes must track the
shared grids in :mod:`repro.evaluation.grids` (the single source the
benchmarks import too), so an axis edited in one place but not the other
fails here instead of silently shrinking a sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import EVAL_ORDER
from repro.evaluation import expand, load_config
from repro.evaluation.config import ablation_step_labels
from repro.evaluation.grids import (
    ABLATION_DATASETS,
    ABLATION_EBS,
    EVAL_EBS,
    RD_COMPRESSORS,
    RD_DATASETS,
    RD_EBS,
    TABLE4_DATASETS,
    ZFP_RATES,
)

CONFIGS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "configs",
)


def _load(name):
    return load_config(os.path.join(CONFIGS, f"{name}.toml"))


@pytest.mark.parametrize("name", ["smoke", "fig8", "table4", "table5"])
def test_config_parses_and_expands(name):
    cfg = _load(name)
    cells = expand(cfg)
    assert cells and len({c.cell_id for c in cells}) == len(cells)


def test_smoke_is_small_and_serial():
    cfg = _load("smoke")
    assert cfg.executor == "serial"
    assert len(expand(cfg)) <= 12  # the CI smoke budget


def test_fig8_axes_match_grids():
    cfg = _load("fig8")
    assert cfg.kind == "rate-distortion"
    assert tuple(d.name for d in cfg.datasets) == RD_DATASETS
    assert cfg.codecs == RD_COMPRESSORS + ("cuzfp",)
    assert cfg.ebs == RD_EBS
    assert cfg.rates_for("cuzfp") == ZFP_RATES


def test_table4_axes_match_grids():
    cfg = _load("table4")
    assert cfg.kind == "cr-table"
    assert tuple(d.name for d in cfg.datasets) == TABLE4_DATASETS
    assert cfg.codecs == tuple(EVAL_ORDER)
    assert cfg.ebs == EVAL_EBS


def test_table5_axes_match_grids():
    cfg = _load("table5")
    assert cfg.kind == "ablation"
    assert tuple(d.name for d in cfg.datasets) == ABLATION_DATASETS
    assert cfg.ebs == ABLATION_EBS
    assert cfg.steps == ablation_step_labels()
