"""Golden tests for the ``repro.eval-report/1`` artifact.

The report document's shape is pinned by a committed snapshot of its key
paths and JSON types (``tests/evaluation/data/report_schema.json``), built
from a tiny deterministic run that exercises every cell flavor (eb cell,
tiled cell, fixed-rate cell).  A deliberate schema change regenerates it::

    PYTHONPATH=src python tests/evaluation/test_report_golden.py --write

and the diff lands in review; an accidental field rename/removal fails
here first.  Also doctests the markdown renderer and asserts byte-for-byte
numeric parity between the orchestrator's cells and the legacy
``run_case``/``run_fixed_rate_case`` harness on the pinned smoke config.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

import pytest

from repro.datasets.registry import load
from repro.evaluation import (
    EVAL_REPORT_SCHEMA,
    build_report,
    canonical_report,
    cell_table,
    load_config,
    load_report,
    parse_config,
    render_html,
    render_markdown,
    run_eval,
    write_report,
)

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
SNAPSHOT_PATH = os.path.join(HERE, "data", "report_schema.json")

#: the pinned generator config: one eb cell, one tiled cell, one rate cell
#: (all three CellResult flavors appear in ``cells``)
PINNED_DOC = {
    "eval": {"kind": "cr-table", "title": "golden"},
    "matrix": {
        "datasets": ["nyx"],
        "codecs": ["cusz-hi-cr", "cuzfp"],
        "ebs": [1e-2],
        "tilings": [[4, 4, 4]],
        "rates": {"cuzfp": [4.0]},
    },
    "datasets": {"nyx": {"shape": [8, 8, 8]}},
}


def shape_sig(value):
    """Key paths -> JSON type names, recursively (values are volatile —
    wall times, paths — but the *shape* is the contract)."""
    if isinstance(value, dict):
        return {k: shape_sig(v) for k, v in sorted(value.items())}
    if isinstance(value, list):
        return [shape_sig(v) for v in value]
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return type(value).__name__


def pinned_report(workdir: str) -> dict:
    cfg = parse_config(PINNED_DOC, name="golden")
    run = run_eval(cfg, os.path.join(workdir, "golden.rpza"))
    assert run.ok, run.failed
    return build_report(run)


class TestGoldenSnapshot:
    def test_schema_string_is_pinned(self):
        assert EVAL_REPORT_SCHEMA == "repro.eval-report/1"

    def test_report_shape_matches_committed_snapshot(self, tmp_path):
        with open(SNAPSHOT_PATH, encoding="utf-8") as fh:
            committed = json.load(fh)
        current = shape_sig(pinned_report(str(tmp_path)))
        assert current == committed, (
            "repro.eval-report/1 shape drifted from "
            "tests/evaluation/data/report_schema.json.\n"
            "If the change is intentional, bump/regenerate the snapshot with:\n"
            "    PYTHONPATH=src python tests/evaluation/test_report_golden.py --write\n"
            "and commit the diff (schema changes need a version bump)."
        )

    def test_report_roundtrips_through_disk(self, tmp_path):
        doc = pinned_report(str(tmp_path))
        path = str(tmp_path / "report.json")
        write_report(doc, path)
        assert load_report(path) == doc

    def test_load_report_rejects_other_schemas(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": "repro.eval-report/999"}, fh)
        with pytest.raises(ValueError, match="expected schema"):
            load_report(path)

    def test_canonical_view_drops_only_volatility(self, tmp_path):
        doc = pinned_report(str(tmp_path))
        canon = canonical_report(doc)
        assert "run" not in canon and "run" in doc
        assert all("wall_s" not in c for c in canon["cells"])
        rest = {k: v for k, v in doc.items() if k != "run"}
        for c in rest["cells"]:
            c.pop("wall_s", None)
        assert canon == rest


class TestRenderers:
    def test_markdown_renderer_doctests(self):
        import doctest

        from repro.evaluation import report as report_mod

        result = doctest.testmod(report_mod)
        assert result.attempted > 0 and result.failed == 0

    def test_markdown_covers_every_cell_flavor(self, tmp_path):
        md = render_markdown(pinned_report(str(tmp_path)))
        assert md.startswith("# golden")
        assert "`repro.eval-report/1` | kind: cr-table | 3/3 cells ok" in md
        assert "## CR at eb = 0.01" in md
        assert "cusz-hi-cr @4x4x4" in md  # tiled column
        assert "## Fixed-rate sweeps" in md  # cuzfp rate cell
        assert "## Failures" not in md

    def test_html_wraps_the_same_layout(self, tmp_path):
        page = render_html(pinned_report(str(tmp_path)))
        assert page.startswith("<!doctype html>")
        assert "<title>golden</title>" in page
        assert "<h2>CR at eb = 0.01</h2>" in page
        assert page.count("<table>") == page.count("</table>") >= 2


class TestSmokeParity:
    """The acceptance criterion: orchestrator numbers == legacy harness
    numbers, byte-for-byte, on the pinned smoke dataset."""

    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        cfg = load_config(os.path.join(REPO, "configs", "smoke.toml"))
        run = run_eval(cfg, str(tmp_path_factory.mktemp("smoke") / "smoke.rpza"))
        assert run.ok, run.failed
        return cfg, build_report(run)

    def test_eb_cells_match_run_case_exactly(self, smoke):
        from repro.analysis.harness import run_case

        cfg, doc = smoke
        cells = cell_table(doc)
        checked = 0
        for ref in cfg.datasets:
            data = load(ref.name, shape=ref.shape, seed=ref.seed)
            for codec in cfg.codecs:
                if codec == "cuzfp":
                    continue
                for eb in cfg.ebs:
                    legacy = run_case(codec, data, eb)
                    mine = cells[(ref.name, codec, eb)]
                    assert mine["cr"] == legacy.cr
                    assert mine["psnr"] == legacy.psnr
                    assert mine["bitrate"] == legacy.bitrate
                    assert mine["max_err"] == legacy.max_err
                    assert mine["nbytes"] == legacy.blob_nbytes
                    checked += 1
        assert checked == 8

    def test_rate_cells_match_run_fixed_rate_case_exactly(self, smoke):
        from repro.analysis.harness import run_fixed_rate_case

        cfg, doc = smoke
        cells = cell_table(doc)
        checked = 0
        for ref in cfg.datasets:
            data = load(ref.name, shape=ref.shape, seed=ref.seed)
            for rate in cfg.rates_for("cuzfp"):
                legacy = run_fixed_rate_case(data, rate)
                mine = cells[(ref.name, "cuzfp", rate)]
                assert mine["cr"] == legacy.cr
                assert mine["psnr"] == legacy.psnr
                assert mine["bitrate"] == legacy.bitrate
                checked += 1
        assert checked == 2


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as workdir:
        sig = shape_sig(pinned_report(workdir))
    if "--write" in sys.argv:
        os.makedirs(os.path.dirname(SNAPSHOT_PATH), exist_ok=True)
        with open(SNAPSHOT_PATH, "w", encoding="utf-8") as fh:
            json.dump(sig, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(json.dumps(sig, indent=1, sort_keys=True))
