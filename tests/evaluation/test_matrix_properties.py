"""Property-based matrix-expansion tests (seeded random, no hypothesis dep).

For randomly drawn configs: every (dataset, variant, control, tiling) cell
appears exactly once, expansion is deterministic and order-stable, and
randomly injected invalid cells are rejected at parse time with the
offending TOML key in the error message.
"""

from __future__ import annotations

import random

import pytest

from repro.api import registry
from repro.evaluation import ConfigError, expand, parse_config
from repro.evaluation.config import ablation_step_labels

#: small pools the generator draws from (2-D and 3-D datasets kept apart so
#: a drawn tiling can match every drawn dataset's rank)
DATASETS_3D = ("jhtdb", "miranda", "nyx", "rtm")
EB_CODECS = ("cusz-hi-cr", "cusz-hi-tp", "cusz-hi", "cusz-l", "cusz-i", "cusz-ib",
             "cuszp2", "fzgpu")
TILING_CODECS = tuple(c for c in EB_CODECS if registry.capabilities(c).tiling)
EB_POOL = (1e-1, 1e-2, 3e-3, 1e-3, 1e-4)
RATE_POOL = (2.0, 4.0, 8.0, 12.0)

N_DRAWS = 25


def _draw_config(rng: random.Random) -> dict:
    """A random *valid* cr-table/rate-distortion config document."""
    datasets = rng.sample(DATASETS_3D, rng.randint(1, 3))
    with_tiling = rng.random() < 0.4
    pool = TILING_CODECS if with_tiling else EB_CODECS
    codecs = rng.sample(pool, rng.randint(1, min(4, len(pool))))
    doc = {
        "eval": {"kind": rng.choice(("cr-table", "rate-distortion"))},
        "matrix": {
            "datasets": datasets,
            "codecs": list(codecs),
            "ebs": sorted(rng.sample(EB_POOL, rng.randint(1, 3)), reverse=True),
        },
        "datasets": {ds: {"shape": [8, 8, 8]} for ds in datasets},
    }
    if with_tiling:
        doc["matrix"]["tilings"] = [[4, 4, 4]] if rng.random() < 0.5 else [[4, 4, 4], [8, 8, 8]]
    if not with_tiling and rng.random() < 0.5:
        doc["matrix"]["codecs"].append("cuzfp")
        doc["matrix"]["rates"] = {"cuzfp": sorted(rng.sample(RATE_POOL, rng.randint(1, 3)))}
    return doc


def _expected_cells(doc: dict) -> set:
    """The cell key set the axes imply, built independently of expand()."""
    m = doc["matrix"]
    tilings = [None] + [tuple(t) for t in m.get("tilings", [])]
    out = set()
    for ds in m["datasets"]:
        for codec in m["codecs"]:
            if registry.capabilities(codec).error_bounded:
                for eb in m["ebs"]:
                    for tiles in tilings:
                        out.add((ds, codec, eb, tiles))
            else:
                for rate in m.get("rates", {}).get(codec, []):
                    out.add((ds, codec, float(rate), None))
    return out


def _keys(cells) -> list:
    return [
        (c.dataset.name, c.variant, c.rate if c.kind == "rate" else c.eb, c.tiles)
        for c in cells
    ]


class TestExpansionProperties:
    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_every_cell_exactly_once(self, seed):
        doc = _draw_config(random.Random(seed))
        cells = expand(parse_config(doc))
        keys = _keys(cells)
        assert len(keys) == len(set(keys)), "duplicate cells"
        assert set(keys) == _expected_cells(doc)

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_cell_ids_unique_and_stable(self, seed):
        doc = _draw_config(random.Random(seed))
        ids = [c.cell_id for c in expand(parse_config(doc))]
        assert len(ids) == len(set(ids))
        assert ids == [c.cell_id for c in expand(parse_config(doc))]

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_expansion_deterministic(self, seed):
        doc = _draw_config(random.Random(seed))
        assert expand(parse_config(doc)) == expand(parse_config(doc))

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_order_stable_dataset_major(self, seed):
        """Cells come out dataset-major, variants in config order, controls
        in config order, untiled before tiled."""
        doc = _draw_config(random.Random(seed))
        cfg = parse_config(doc)
        cells = expand(cfg)
        ds_order = [d.name for d in cfg.datasets]
        seen_ds = [c.dataset.name for c in cells]
        assert seen_ds == sorted(seen_ds, key=ds_order.index)
        for ds in ds_order:
            variants = [c.variant for c in cells if c.dataset.name == ds]
            order = list(cfg.codecs)
            assert variants == sorted(variants, key=order.index)

    def test_ablation_expansion_order(self):
        cfg = parse_config({
            "eval": {"kind": "ablation"},
            "matrix": {"datasets": ["nyx", "rtm"], "ebs": [1e-2, 1e-3]},
            "datasets": {ds: {"shape": [8, 8, 8]} for ds in ("nyx", "rtm")},
        })
        keys = _keys(expand(cfg))
        labels = ablation_step_labels()
        assert keys == [
            (ds, step, eb, None)
            for ds in ("nyx", "rtm")
            for step in labels
            for eb in (1e-2, 1e-3)
        ]


class TestInvalidCellsRejectedAtParseTime:
    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_unknown_dataset_injection_names_key(self, seed):
        rng = random.Random(1000 + seed)
        doc = _draw_config(rng)
        names = doc["matrix"]["datasets"]
        i = rng.randrange(len(names) + 1)
        names.insert(i, "not-a-dataset")
        with pytest.raises(ConfigError, match=rf"matrix\.datasets\[{i}\] = 'not-a-dataset'"):
            parse_config(doc)

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_unknown_codec_injection_names_key(self, seed):
        rng = random.Random(2000 + seed)
        doc = _draw_config(rng)
        codecs = doc["matrix"]["codecs"]
        i = rng.randrange(len(codecs) + 1)
        codecs.insert(i, "gzip")
        with pytest.raises(ConfigError, match=rf"matrix\.codecs\[{i}\] = 'gzip'"):
            parse_config(doc)

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_tiling_capability_mismatch_names_both_keys(self, seed):
        rng = random.Random(3000 + seed)
        doc = _draw_config(rng)
        non_tiling = [c for c in EB_CODECS if not registry.capabilities(c).tiling]
        bad = rng.choice(non_tiling)
        codecs = [c for c in doc["matrix"]["codecs"] if registry.capabilities(c).tiling]
        if not codecs:
            codecs = [rng.choice(TILING_CODECS)]
        i = rng.randrange(len(codecs) + 1)
        codecs.insert(i, bad)
        doc["matrix"]["codecs"] = codecs
        doc["matrix"].setdefault("tilings", [[4, 4, 4]])
        doc["matrix"].pop("rates", None)
        with pytest.raises(
            ConfigError,
            match=rf"matrix\.tilings\[0\] x matrix\.codecs\[{i}\] = '{bad}'",
        ):
            parse_config(doc)

    @pytest.mark.parametrize("seed", range(N_DRAWS))
    def test_fixed_rate_codec_without_rates_names_key(self, seed):
        rng = random.Random(4000 + seed)
        doc = _draw_config(rng)
        doc["matrix"].pop("rates", None)
        doc["matrix"].pop("tilings", None)
        codecs = [c for c in doc["matrix"]["codecs"] if c != "cuzfp"] + ["cuzfp"]
        doc["matrix"]["codecs"] = codecs
        i = codecs.index("cuzfp")
        with pytest.raises(ConfigError, match=rf"matrix\.codecs\[{i}\] = 'cuzfp'"):
            parse_config(doc)
