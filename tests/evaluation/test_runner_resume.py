"""Resume semantics: failing cells, crashes, and skip-existing reruns.

Two interruption modes are simulated — a cell that raises (disk/codec
failure) and a SIGTERM delivered to a ``repro eval`` subprocess mid-matrix.
In both cases a rerun with resume enabled must re-execute only the missing
cells, and the final report must be canonically identical to a run that was
never interrupted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.evaluation import (
    build_report,
    canonical_report,
    load_config,
    parse_config,
    run_eval,
)
from repro.evaluation import runner as runner_mod
from repro.service.archive import ArchiveStore

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _cfg(name="resume-demo"):
    return parse_config(
        {
            "eval": {"kind": "cr-table"},
            "matrix": {
                "datasets": ["nyx", "rtm"],
                "codecs": ["cusz-l", "cuszp2"],
                "ebs": [1e-2, 1e-3],
            },
            "datasets": {
                "nyx": {"shape": [8, 8, 8]},
                "rtm": {"shape": [8, 8, 8]},
            },
        },
        name=name,
    )


class TestFailingCell:
    def test_failed_cells_rerun_and_report_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        cfg = _cfg()
        arc = str(tmp_path / "eval.rpza")
        orig = runner_mod._load_dataset

        def flaky(name, shape, seed):
            if name == "rtm":
                raise RuntimeError("simulated I/O failure")
            return orig(name, shape, seed)

        monkeypatch.setattr(runner_mod, "_load_dataset", flaky)
        run1 = run_eval(cfg, arc)
        assert not run1.ok
        failed = set(run1.failed)
        assert failed == {r.cell for r in run1.cells if r.dataset == "rtm"}
        assert len(failed) == 4 and len(run1.executed) == 8

        # Failed cells must NOT be archived — only finished work is durable.
        with ArchiveStore(arc, mode="r") as store:
            assert failed.isdisjoint(store.names())
            assert len(store) == 4

        # Rerun with resume: only the previously-failed cells execute.
        monkeypatch.setattr(runner_mod, "_load_dataset", orig)
        run2 = run_eval(cfg, arc)
        assert run2.ok
        assert set(run2.executed) == failed
        assert set(run2.resumed) == {r.cell for r in run1.cells if r.status == "ok"}

        # The recovered report is canonically identical to a fresh one.
        fresh = run_eval(cfg, str(tmp_path / "fresh.rpza"))
        assert canonical_report(build_report(run2)) == canonical_report(
            build_report(fresh)
        )

    def test_failure_rows_carry_the_error(self, tmp_path, monkeypatch):
        cfg = _cfg()
        orig = runner_mod._load_dataset
        monkeypatch.setattr(
            runner_mod,
            "_load_dataset",
            lambda name, shape, seed: (_ for _ in ()).throw(RuntimeError("boom"))
            if name == "rtm"
            else orig(name, shape, seed),
        )
        run = run_eval(cfg, str(tmp_path / "eval.rpza"))
        bad = [r for r in run.cells if r.status == "failed"]
        assert bad and all("RuntimeError: boom" in r.error for r in bad)
        assert all(r.cr is None for r in bad)

    def test_no_resume_re_executes_everything(self, tmp_path):
        cfg = _cfg()
        arc = str(tmp_path / "eval.rpza")
        run1 = run_eval(cfg, arc)
        assert len(run1.executed) == 8 and not run1.resumed

        run2 = run_eval(cfg, arc, resume=False)
        assert len(run2.executed) == 8 and not run2.resumed

        run3 = run_eval(cfg, arc)  # resume again: everything is a dict read
        assert not run3.executed and len(run3.resumed) == 8
        assert canonical_report(build_report(run3)) == canonical_report(
            build_report(run1)
        )


class TestSigtermCrash:
    def test_sigterm_mid_matrix_resumes_without_recompute(self, tmp_path):
        doc = {
            "eval": {"kind": "cr-table"},
            "matrix": {
                "datasets": ["nyx"],
                "codecs": ["cusz-hi-cr", "cusz-l"],
                "ebs": [1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 1e-4],
            },
            "datasets": {"nyx": {"shape": [40, 40, 40]}},
        }
        cfg_path = tmp_path / "crash.json"
        cfg_path.write_text(json.dumps(doc))
        arc = str(tmp_path / "crash.rpza")
        report_path = str(tmp_path / "crash.report.json")

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "eval",
                str(cfg_path),
                "--archive",
                arc,
                "-o",
                report_path,
            ],
            cwd=REPO,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Poll the archive's committed (footer-flip) index until some cells
        # have landed, then kill the orchestrator mid-matrix.
        deadline = time.monotonic() + 60.0
        archived = 0
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                with ArchiveStore(arc, mode="r") as store:
                    archived = len(store)
            except Exception:
                archived = 0
            if archived >= 2:
                proc.send_signal(signal.SIGTERM)
                break
            time.sleep(0.02)
        out, err = proc.communicate(timeout=60)
        if proc.returncode == 0:
            pytest.skip(f"run finished before the interrupt landed: {out!r}")
        assert proc.returncode != 0

        cfg = load_config(str(cfg_path))
        total = 12
        with ArchiveStore(arc, mode="r") as store:
            done = set(store.names())
        assert 0 < len(done) < total, (len(done), err.decode()[-500:])

        # Resume: completed cells are rebuilt from the index, the rest run.
        run2 = run_eval(cfg, arc)
        assert run2.ok
        assert set(run2.resumed) == done
        assert len(run2.executed) == total - len(done)
        assert set(run2.executed).isdisjoint(done)

        # The resumed report equals one from a never-interrupted run.
        fresh = run_eval(cfg, str(tmp_path / "fresh.rpza"))
        assert canonical_report(build_report(run2)) == canonical_report(
            build_report(fresh)
        )
