"""Experiment-config parsing: totality and key-named errors.

Every rejection must carry the offending TOML key, so a config fails at
parse time — before any cell has burned compute — with a message that says
exactly which line of the file to fix.
"""

from __future__ import annotations

import json

import pytest

from repro.evaluation import (
    ConfigError,
    ablation_step_labels,
    load_config,
    parse_config,
)


def _doc(**overrides):
    doc = {
        "eval": {"kind": "cr-table", "title": "t"},
        "matrix": {"datasets": ["nyx"], "codecs": ["cusz-hi-cr"], "ebs": [1e-3]},
        "datasets": {"nyx": {"shape": [8, 8, 8]}},
    }
    doc.update(overrides)
    return doc


def _err(doc) -> str:
    with pytest.raises(ConfigError) as exc:
        parse_config(doc)
    return str(exc.value)


class TestParseDefaults:
    def test_minimal_config(self):
        cfg = parse_config(_doc(), name="demo")
        assert cfg.name == "demo"
        assert cfg.kind == "cr-table"
        assert cfg.datasets[0].name == "nyx"
        assert cfg.datasets[0].shape == (8, 8, 8)
        assert cfg.ebs == (1e-3,)
        assert cfg.eb_mode == "rel"
        assert cfg.executor == "serial"
        assert cfg.workers == 0
        assert cfg.tilings == ()

    def test_title_defaults_to_name(self):
        doc = _doc()
        doc["eval"] = {"kind": "cr-table"}
        assert parse_config(doc, name="fig8").title == "fig8"

    def test_dataset_overrides(self):
        doc = _doc()
        doc["datasets"]["nyx"] = {"shape": [4, 6, 8], "seed": 7}
        ref = parse_config(doc).datasets[0]
        assert ref.shape == (4, 6, 8) and ref.seed == 7 and ref.ndim == 3

    def test_default_shape_ndim(self):
        doc = _doc(datasets={})
        ref = parse_config(doc).datasets[0]
        assert ref.shape is None and ref.ndim == 3  # nyx default is 3-D

    def test_execution_section(self):
        doc = _doc(execution={"executor": "threads", "workers": 3})
        cfg = parse_config(doc)
        assert cfg.executor == "threads" and cfg.workers == 3

    def test_rates_roundtrip(self):
        doc = _doc()
        doc["matrix"]["codecs"] = ["cusz-hi-cr", "cuzfp"]
        doc["matrix"]["rates"] = {"cuzfp": [2, 4.0]}
        cfg = parse_config(doc)
        assert cfg.rates_for("cuzfp") == (2.0, 4.0)
        assert cfg.rates_for("cusz-hi-cr") == ()

    def test_matrix_dict_is_json_ready(self):
        doc = _doc(execution={"executor": "processes"})
        doc["matrix"]["tilings"] = [[4, 4, 4]]
        out = parse_config(doc).matrix_dict()
        json.dumps(out)  # must serialize
        assert out["datasets"][0]["name"] == "nyx"
        assert out["tilings"] == [[4, 4, 4]]


class TestKeyNamedErrors:
    """Each rejection names the offending TOML key."""

    def test_unknown_dataset_names_index(self):
        doc = _doc()
        doc["matrix"]["datasets"] = ["nyx", "mars"]
        msg = _err(doc)
        assert "matrix.datasets[1] = 'mars'" in msg and "known" in msg

    def test_unknown_codec_names_index(self):
        doc = _doc()
        doc["matrix"]["codecs"] = ["cusz-hi-cr", "gzip"]
        msg = _err(doc)
        assert "matrix.codecs[1] = 'gzip'" in msg

    def test_duplicate_axis_entries(self):
        doc = _doc()
        doc["matrix"]["datasets"] = ["nyx", "nyx"]
        assert "matrix.datasets: duplicate" in _err(doc)
        doc = _doc()
        doc["matrix"]["codecs"] = ["cusz-l", "cusz-l"]
        assert "matrix.codecs: duplicate" in _err(doc)

    def test_bad_kind(self):
        doc = _doc()
        doc["eval"]["kind"] = "fig-12"
        assert "eval.kind" in _err(doc)

    def test_unknown_section_keys(self):
        assert "config: unknown keys" in _err(_doc(bogus={}))
        doc = _doc()
        doc["matrix"]["bogus"] = 1
        assert "matrix: unknown keys" in _err(doc)
        doc = _doc()
        doc["datasets"]["nyx"]["bogus"] = 1
        assert "datasets.nyx: unknown keys" in _err(doc)

    def test_bad_eb_values(self):
        doc = _doc()
        doc["matrix"]["ebs"] = [1e-3, -1.0]
        assert "matrix.ebs[1]" in _err(doc)
        doc = _doc()
        doc["matrix"]["ebs"] = []
        assert "matrix.ebs" in _err(doc)

    def test_missing_ebs_for_error_bounded_codec(self):
        doc = _doc()
        del doc["matrix"]["ebs"]
        msg = _err(doc)
        assert "matrix.ebs: required" in msg and "cusz-hi-cr" in msg

    def test_fixed_rate_codec_without_rates(self):
        doc = _doc()
        doc["matrix"]["codecs"] = ["cuzfp"]
        msg = _err(doc)
        assert "matrix.codecs[0] = 'cuzfp'" in msg and "[matrix.rates]" in msg

    def test_rates_for_error_bounded_codec(self):
        doc = _doc()
        doc["matrix"]["rates"] = {"cusz-hi-cr": [4.0]}
        assert "matrix.rates.cusz-hi-cr" in _err(doc)

    def test_rates_for_unlisted_codec(self):
        doc = _doc()
        doc["matrix"]["rates"] = {"cuzfp": [4.0]}
        assert "matrix.rates.cuzfp" in _err(doc)

    def test_tiling_on_non_tiling_codec_names_both_keys(self):
        doc = _doc()
        doc["matrix"]["codecs"] = ["cusz-hi-cr", "fzgpu"]
        doc["matrix"]["tilings"] = [[4, 4, 4]]
        msg = _err(doc)
        assert "matrix.tilings[0] x matrix.codecs[1] = 'fzgpu'" in msg
        assert "capability mismatch" in msg

    def test_tile_ndim_mismatch_names_both_keys(self):
        doc = _doc()
        doc["matrix"]["tilings"] = [[4, 4]]
        msg = _err(doc)
        assert "matrix.tilings[0]" in msg and "matrix.datasets[0] = 'nyx'" in msg

    def test_bad_executor(self):
        assert "execution.executor" in _err(_doc(execution={"executor": "gpu"}))

    def test_bad_workers(self):
        assert "execution.workers" in _err(_doc(execution={"workers": -1}))

    def test_bad_dataset_seed(self):
        doc = _doc()
        doc["datasets"]["nyx"]["seed"] = "zero"
        assert "datasets.nyx.seed" in _err(doc)

    def test_bad_dataset_shape(self):
        doc = _doc()
        doc["datasets"]["nyx"]["shape"] = [8, 0, 8]
        assert "datasets.nyx.shape" in _err(doc)


class TestAblationKind:
    def _doc(self, **matrix):
        m = {"datasets": ["nyx"], "ebs": [1e-2]}
        m.update(matrix)
        return {
            "eval": {"kind": "ablation"},
            "matrix": m,
            "datasets": {"nyx": {"shape": [8, 8, 8]}},
        }

    def test_steps_default_to_full_chain(self):
        cfg = parse_config(self._doc())
        assert cfg.steps == ablation_step_labels()
        assert cfg.codecs == ()

    def test_explicit_step_subset(self):
        steps = list(ablation_step_labels()[:2])
        assert parse_config(self._doc(steps=steps)).steps == tuple(steps)

    def test_unknown_step_names_index(self):
        msg = _err(self._doc(steps=["cusz-ib", "+warp drive"]))
        assert "matrix.steps[1] = '+warp drive'" in msg

    def test_codecs_not_allowed(self):
        assert "matrix.codecs: not allowed for kind='ablation'" in _err(
            self._doc(codecs=["cusz-l"])
        )

    def test_requires_ebs(self):
        doc = self._doc()
        del doc["matrix"]["ebs"]
        assert "matrix.ebs: required" in _err(doc)

    def test_steps_only_for_ablation(self):
        doc = _doc()
        doc["matrix"]["steps"] = ["cusz-ib"]
        assert "matrix.steps: only allowed for kind='ablation'" in _err(doc)


class TestLoadConfig:
    def test_toml_and_json_agree(self, tmp_path):
        toml = tmp_path / "a.toml"
        toml.write_text(
            "[eval]\nkind = 'cr-table'\n"
            "[matrix]\ndatasets = ['nyx']\ncodecs = ['cusz-l']\nebs = [1e-3]\n"
            "[datasets.nyx]\nshape = [8, 8, 8]\n"
        )
        js = tmp_path / "b.json"
        js.write_text(json.dumps(_doc()))
        a, b = load_config(str(toml)), load_config(str(js))
        assert a.name == "a" and b.name == "b"
        assert a.datasets == b.datasets and a.ebs == b.ebs

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read config"):
            load_config(str(tmp_path / "none.toml"))

    def test_invalid_toml_is_config_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[eval\nkind =")
        with pytest.raises(ConfigError, match="invalid TOML"):
            load_config(str(path))

    def test_invalid_json_is_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(str(path))
