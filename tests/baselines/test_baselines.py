"""Baseline compressors: bound guarantees, round-trips, stream dispatch."""

import numpy as np
import pytest

import repro
from repro.baselines import CuszI, CuszIB, CuszL, CuszP2, FzGpu
from repro.core.registry import CODEC_IDS

FIXED_EB = [
    ("cusz-l", CuszL),
    ("cusz-i", CuszI),
    ("cusz-ib", CuszIB),
    ("cuszp2", CuszP2),
    ("fzgpu", FzGpu),
]


@pytest.mark.parametrize("name,cls", FIXED_EB)
class TestFixedEbBaselines:
    def test_roundtrip_bound(self, name, cls, smooth3d):
        comp = cls()
        blob = comp.compress(smooth3d, 1e-3)
        out = comp.decompress(blob)
        assert blob.codec == CODEC_IDS[name]
        assert np.abs(smooth3d.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    def test_dispatch_through_registry(self, name, cls, smooth2d):
        blob = cls().compress(smooth2d, 1e-2)
        out = repro.decompress(blob.to_bytes())
        assert np.abs(smooth2d.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    def test_noisy_data_bound(self, name, cls, noisy3d):
        comp = cls()
        blob = comp.compress(noisy3d, 1e-4)
        out = comp.decompress(blob)
        assert np.abs(noisy3d.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    def test_kernel_traces(self, name, cls, smooth3d):
        comp = cls()
        blob = comp.compress(smooth3d, 1e-2)
        comp.decompress(blob)
        assert len(comp.last_comp_trace) >= 1
        assert len(comp.last_decomp_trace) >= 1


class TestCuszIConfiguration:
    def test_anchor_stride_8(self, smooth3d):
        blob = CuszI().compress(smooth3d, 1e-3)
        assert blob.meta["anchor_stride"] == "8"
        assert blob.meta["reorder"] == "0"
        assert blob.meta["pipeline"] == "HF"

    def test_ib_appends_bitcomp(self, smooth3d):
        blob = CuszIB().compress(smooth3d, 1e-3)
        assert blob.meta["pipeline"] == "HF+nvCOMP::Bitcomp"

    def test_ib_never_worse_than_i_much(self, smooth3d):
        """Bitcomp post-pass costs at most its stored-mode overhead."""
        cr_i = CuszI().compress(smooth3d, 1e-2).compression_ratio
        cr_ib = CuszIB().compress(smooth3d, 1e-2).compression_ratio
        assert cr_ib >= 0.95 * cr_i


class TestCuszP2Modes:
    def test_plain_mode_roundtrip(self, smooth3d):
        comp = CuszP2(mode="plain")
        blob = comp.compress(smooth3d, 1e-3)
        out = comp.decompress(blob)
        assert np.abs(smooth3d.astype(np.float64) - out.astype(np.float64)).max() <= blob.error_bound

    def test_outlier_mode_beats_plain(self, smooth3d):
        """The zero-block bitmap must help on smooth data (paper §6.1.2)."""
        cr_out = CuszP2(mode="outlier").compress(smooth3d, 1e-2).compression_ratio
        cr_plain = CuszP2(mode="plain").compress(smooth3d, 1e-2).compression_ratio
        assert cr_out >= cr_plain

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CuszP2(mode="turbo")


def test_interpolation_beats_lorenzo_on_smooth(smooth3d):
    """§4: spline decomposition out-compresses Lorenzo on smooth fields."""
    cr_i = CuszI().compress(smooth3d, 1e-2).compression_ratio
    cr_l = CuszL().compress(smooth3d, 1e-2).compression_ratio
    assert cr_i > cr_l
