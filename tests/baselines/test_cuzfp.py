"""cuZFP: transform exactness, blockify geometry, fixed-rate behaviour."""

import numpy as np
import pytest

import repro
from repro.baselines.cuzfp import (
    FWD,
    INV,
    CuZfp,
    _blockify,
    _from_negabinary,
    _pad_to_blocks,
    _to_negabinary,
    _unblockify,
)
from repro.metrics import psnr


class TestTransform:
    def test_matrices_are_inverses(self):
        assert np.allclose(INV @ FWD, np.eye(4), atol=1e-12)

    def test_fwd_decorrelates_constant_block(self):
        block = np.full((1, 4, 4, 4), 7.0)
        from repro.baselines.cuzfp import _transform

        coeffs = _transform(block, FWD)
        # DC coefficient holds the mean; all others vanish.
        assert coeffs[0, 0, 0, 0] == pytest.approx(7.0)
        assert np.abs(coeffs.reshape(-1)[1:]).max() < 1e-12


class TestNegabinary:
    def test_roundtrip(self, rng):
        vals = rng.integers(-(2**29), 2**29, 1000).astype(np.int64)
        u = _to_negabinary(vals)
        back = _from_negabinary(u)
        assert np.array_equal(back, vals)

    def test_small_values_few_bits(self):
        # Negabinary of 0 is 0 — zero blocks stay zero across planes.
        assert _to_negabinary(np.array([0], np.int64))[0] == 0


class TestBlockify:
    @pytest.mark.parametrize("shape", [(8,), (8, 12), (4, 8, 12)])
    def test_roundtrip(self, shape, rng):
        data = rng.random(shape).astype(np.float32)
        blocks = _blockify(data)
        assert blocks.shape[1:] == (4,) * len(shape)
        back = _unblockify(blocks, shape)
        assert np.array_equal(back, data)

    def test_padding(self):
        data = np.arange(10, dtype=np.float32)
        padded = _pad_to_blocks(data)
        assert padded.shape == (12,)
        assert padded[10] == padded[9]  # edge replication


class TestCodec:
    def test_fixed_rate_size(self, smooth3d):
        comp = CuZfp(rate=8)
        blob = comp.compress(smooth3d)
        # 8 bits/value + container overhead -> CR a bit above 32/8 * planes...
        assert 3.0 < blob.compression_ratio < 6.0

    def test_rate_monotone_quality(self, smooth3d):
        psnrs = []
        for rate in (4, 8, 16):
            comp = CuZfp(rate=rate)
            out = comp.decompress(comp.compress(smooth3d))
            psnrs.append(psnr(smooth3d, out))
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_2d_roundtrip(self, smooth2d):
        comp = CuZfp(rate=12)
        out = comp.decompress(comp.compress(smooth2d))
        assert out.shape == smooth2d.shape
        assert psnr(smooth2d, out) > 30

    def test_non_multiple_of_4_dims(self, rng):
        data = rng.random((9, 11, 13)).astype(np.float32)
        comp = CuZfp(rate=16)
        out = comp.decompress(comp.compress(data))
        assert out.shape == data.shape

    def test_dispatch(self, smooth2d):
        blob = CuZfp(rate=8).compress(smooth2d)
        out = repro.decompress(blob.to_bytes())
        assert out.shape == smooth2d.shape

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            CuZfp(rate=0)

    def test_rejects_ints(self):
        with pytest.raises(TypeError):
            CuZfp().compress(np.zeros((4, 4), dtype=np.int32))

    def test_zero_block_stability(self):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        comp = CuZfp(rate=8)
        out = comp.decompress(comp.compress(data))
        assert np.abs(out).max() < 1e-6
