"""Shared fixtures: small deterministic fields sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smooth3d():
    """Smooth 3-D field (interpolation-friendly), non-power-of-two dims."""
    x, y, z = np.meshgrid(
        np.linspace(0, 2 * np.pi, 45),
        np.linspace(0, 2 * np.pi, 38),
        np.linspace(0, 2 * np.pi, 41),
        indexing="ij",
    )
    return (np.sin(x) * np.cos(y) + 0.5 * np.sin(z) + 0.1 * np.sin(3 * x) * np.cos(2 * z)).astype(
        np.float32
    )


@pytest.fixture(scope="session")
def noisy3d(rng):
    """Rough field exercising the outlier / low-compressibility paths."""
    base = np.linspace(0, 1, 32 * 33 * 30, dtype=np.float64).reshape(32, 33, 30)
    return (base + 0.2 * rng.standard_normal((32, 33, 30))).astype(np.float32)


@pytest.fixture(scope="session")
def smooth2d():
    x, y = np.meshgrid(np.linspace(0, 4, 70), np.linspace(0, 3, 55), indexing="ij")
    return (np.exp(-((x - 2) ** 2) - ((y - 1.5) ** 2)) + 0.3 * np.sin(3 * x)).astype(np.float32)


@pytest.fixture(scope="session")
def quantcode_bytes(rng):
    """A realistic quantization-code byte stream: 128-centered, zero-heavy,
    with spatially varying magnitude (prediction error tracks local field
    roughness), which produces the zero runs the reducing stages feed on."""
    n = 200_000
    envelope = np.abs(np.sin(np.linspace(0, 40 * np.pi, n))) ** 3
    vals = np.clip(np.rint(rng.standard_normal(n) * 2.0 * envelope), -127, 127)
    return (vals + 128).astype(np.uint8).tobytes()
