"""Legacy shim so ``pip install -e .`` works offline (environments without
the ``wheel`` package fall back to ``setup.py develop``); all metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
